//! Rotation-pool dynamics (§5.4, Figures 9 and 10).
//!
//! Figure 9 follows three AS8881 identifiers over the campaign and shows
//! their delegated /64 prefix incrementing daily, wrapping modulo the /46
//! pool. Figure 10 probes one /46 pool hourly for a week and shows EUI-64
//! address density per constituent /48, with prefix reassignment concentrated
//! in the early-morning hours.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use scent_ipv6::{Eui64, Ipv6Prefix};
use scent_prober::Scan;
use scent_simnet::SimTime;

/// The per-scan observation of one identifier: which /64 it appeared in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IidObservation {
    /// When the observation was made (scan start time).
    pub at: SimTime,
    /// The /64 prefix the identifier's address fell in.
    pub prefix64: Ipv6Prefix,
}

/// Figure 9: the trajectory of selected identifiers across scans.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IidTrajectories {
    /// Observations per identifier, in scan order.
    pub trajectories: HashMap<Eui64, Vec<IidObservation>>,
}

impl IidTrajectories {
    /// Extract trajectories for `iids` (or all identifiers if empty) from a
    /// sequence of scans.
    pub fn extract(scans: &[&Scan], iids: &[Eui64]) -> Self {
        let filter: Option<HashSet<Eui64>> = if iids.is_empty() {
            None
        } else {
            Some(iids.iter().copied().collect())
        };
        let mut trajectories: HashMap<Eui64, Vec<IidObservation>> = HashMap::new();
        for scan in scans {
            // Each identifier may answer several probes in one scan; record
            // it once per scan.
            let mut seen_this_scan: HashMap<Eui64, Ipv6Prefix> = HashMap::new();
            for record in &scan.records {
                let Some(eui) = record.eui64() else { continue };
                if let Some(filter) = &filter {
                    if !filter.contains(&eui) {
                        continue;
                    }
                }
                let source = record.source().expect("eui64 implies response");
                seen_this_scan
                    .entry(eui)
                    .or_insert_with(|| Ipv6Prefix::enclosing_64(source));
            }
            for (eui, prefix64) in seen_this_scan {
                trajectories.entry(eui).or_default().push(IidObservation {
                    at: scan.started_at,
                    prefix64,
                });
            }
        }
        IidTrajectories { trajectories }
    }

    /// The trajectory of one identifier, if observed.
    pub fn for_iid(&self, eui: Eui64) -> Option<&[IidObservation]> {
        self.trajectories.get(&eui).map(|v| v.as_slice())
    }

    /// Identifiers sorted by how many observations they have (most first) —
    /// useful for picking well-observed devices to plot.
    pub fn best_observed(&self, count: usize) -> Vec<Eui64> {
        let mut iids: Vec<(Eui64, usize)> = self
            .trajectories
            .iter()
            .map(|(eui, obs)| (*eui, obs.len()))
            .collect();
        iids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.as_u64().cmp(&b.0.as_u64())));
        iids.into_iter().take(count).map(|(eui, _)| eui).collect()
    }

    /// Whether an identifier's observed /64 index (within `pool`) advances
    /// monotonically modulo the pool size — the "increments each day, wraps
    /// modulo the pool" behaviour of Figure 9.
    pub fn is_monotone_modulo(&self, eui: Eui64, pool: &Ipv6Prefix) -> Option<bool> {
        let observations = self.trajectories.get(&eui)?;
        let indices: Vec<u128> = observations
            .iter()
            .filter_map(|o| pool.subnet_index(&o.prefix64))
            .collect();
        if indices.len() < 2 {
            return Some(true);
        }
        let n = pool.num_subnets(64).ok()?;
        let mut wraps = 0;
        for pair in indices.windows(2) {
            if pair[1] < pair[0] {
                wraps += 1;
            }
            // Forward distance must be positive and less than the pool size.
            let forward = (pair[1] + n - pair[0]) % n;
            if forward == 0 {
                return Some(false);
            }
        }
        // At most one wrap per traversal of the pool is expected for the
        // observation windows we use.
        Some(wraps <= 1 + indices.len() / 4)
    }
}

/// Figure 10: EUI-64 address density per /48 of a rotation pool over time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolDensityTimeline {
    /// The /48 prefixes of the pool, in order.
    pub subnets_48: Vec<Ipv6Prefix>,
    /// One row per scan: `(scan time, fraction of probed /64-blocks per /48
    /// occupied by an EUI-64 address)`.
    pub rows: Vec<(SimTime, Vec<f64>)>,
}

impl PoolDensityTimeline {
    /// Measure the per-/48 EUI-64 density over a sequence of scans of the
    /// pool. Density is the number of distinct EUI-64 source addresses seen
    /// in the /48 divided by the number of probes aimed into it.
    pub fn measure(pool: &Ipv6Prefix, scans: &[&Scan]) -> Self {
        let subnets_48: Vec<Ipv6Prefix> =
            pool.subnets(48).expect("pool is /48 or shorter").collect();
        let index_of = |prefix: &Ipv6Prefix| -> Option<usize> {
            pool.subnet_index(&prefix.supernet(48).ok()?)
                .map(|i| i as usize)
        };
        let mut rows = Vec::with_capacity(scans.len());
        for scan in scans {
            let mut probes = vec![0u64; subnets_48.len()];
            let mut sources: Vec<HashSet<std::net::Ipv6Addr>> =
                vec![HashSet::new(); subnets_48.len()];
            for record in &scan.records {
                let target_48 = Ipv6Prefix::new(record.target, 48).expect("valid length");
                let Some(idx) = index_of(&target_48) else {
                    continue;
                };
                probes[idx] += 1;
                if let Some(response) = record.response {
                    if Eui64::addr_is_eui64(response.source) {
                        sources[idx].insert(response.source);
                    }
                }
            }
            let densities = probes
                .iter()
                .zip(&sources)
                .map(|(&sent, unique)| {
                    if sent == 0 {
                        0.0
                    } else {
                        unique.len() as f64 / sent as f64
                    }
                })
                .collect();
            rows.push((scan.started_at, densities));
        }
        PoolDensityTimeline { subnets_48, rows }
    }

    /// For each scan, the index of the densest /48.
    pub fn densest_per_scan(&self) -> Vec<usize> {
        self.rows
            .iter()
            .map(|(_, densities)| {
                densities
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("densities are finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The hours-of-day at which the densest /48 changed from the previous
    /// scan — the reassignment window of Figure 10.
    pub fn reassignment_hours(&self) -> Vec<u64> {
        let densest = self.densest_per_scan();
        let mut hours = Vec::new();
        for i in 1..densest.len() {
            if densest[i] != densest[i - 1] {
                hours.push(self.rows[i].0.hour_of_day());
            }
        }
        hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_prober::{Campaign, Scanner, TargetGenerator};
    use scent_simnet::{scenarios, Engine, SimDuration};

    /// Daily scans of one /56-allocation Versatel /46 pool.
    fn daily_pool_scans(days: u64) -> (Engine, Ipv6Prefix, Vec<Scan>) {
        let engine = Engine::build(scenarios::versatel_like(91)).unwrap();
        let pool = engine
            .pools()
            .iter()
            .find(|p| p.config.allocation_len == 56)
            .unwrap()
            .config
            .prefix;
        let targets = TargetGenerator::new(12).one_per_subnet(&pool, 56);
        let scanner = Scanner::at_paper_rate(29);
        let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 9), days);
        (engine, pool, campaign.scans)
    }

    #[test]
    fn trajectories_increment_modulo_pool() {
        let (_engine, pool, scans) = daily_pool_scans(15);
        let refs: Vec<&Scan> = scans.iter().collect();
        let all = IidTrajectories::extract(&refs, &[]);
        let best = all.best_observed(3);
        assert_eq!(best.len(), 3);
        for eui in best {
            let trajectory = all.for_iid(eui).unwrap();
            assert!(trajectory.len() >= 10, "observations={}", trajectory.len());
            // The prefix changes every day.
            let distinct: HashSet<_> = trajectory.iter().map(|o| o.prefix64).collect();
            assert!(distinct.len() >= trajectory.len() - 1);
            // ...and the movement is a monotone increment modulo the pool.
            assert_eq!(all.is_monotone_modulo(eui, &pool), Some(true));
        }
    }

    #[test]
    fn filtered_extraction_only_keeps_requested_iids() {
        let (_engine, _pool, scans) = daily_pool_scans(3);
        let refs: Vec<&Scan> = scans.iter().collect();
        let all = IidTrajectories::extract(&refs, &[]);
        let pick = all.best_observed(1)[0];
        let filtered = IidTrajectories::extract(&refs, &[pick]);
        assert_eq!(filtered.trajectories.len(), 1);
        assert!(filtered.for_iid(pick).is_some());
        // Unknown IID yields nothing.
        let unknown = Eui64::from_mac("02:00:00:00:00:99".parse().unwrap());
        assert!(filtered.for_iid(unknown).is_none());
        assert_eq!(
            IidTrajectories::default()
                .is_monotone_modulo(unknown, &"2001:db8::/46".parse().unwrap()),
            None
        );
    }

    #[test]
    fn hourly_density_shows_one_dominant_48_and_morning_reassignment() {
        let engine = Engine::build(scenarios::versatel_like(92)).unwrap();
        let pool = engine
            .pools()
            .iter()
            .find(|p| p.config.allocation_len == 56)
            .unwrap()
            .config
            .prefix;
        let targets = TargetGenerator::new(13).one_per_subnet(&pool, 56);
        let scanner = Scanner::at_paper_rate(31);
        // Hourly scans for three days, as in Figure 10's week of hourly data.
        let campaign = Campaign::run(
            &scanner,
            &engine,
            &targets,
            SimTime::at(20, 0),
            72,
            SimDuration::from_hours(1),
        );
        let refs: Vec<&Scan> = campaign.scans.iter().collect();
        let timeline = PoolDensityTimeline::measure(&pool, &refs);
        assert_eq!(timeline.subnets_48.len(), 4);
        assert_eq!(timeline.rows.len(), 72);
        // At any instant one /48 holds the bulk of the devices (contiguous
        // layout), and the total density is non-trivial.
        for (_, densities) in &timeline.rows {
            let max = densities.iter().cloned().fold(0.0f64, f64::max);
            let sum: f64 = densities.iter().sum();
            assert!(max > 0.0);
            assert!(max / sum.max(1e-9) > 0.5, "densities={densities:?}");
        }
        // Reassignment (the densest /48 changing) happens in the configured
        // 00:00–06:00 window.
        let hours = timeline.reassignment_hours();
        assert!(!hours.is_empty());
        for hour in hours {
            assert!(hour <= 7, "reassignment at hour {hour}");
        }
    }
}

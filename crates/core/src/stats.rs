//! Small statistics helpers: medians, means, standard deviations and
//! empirical CDFs.
//!
//! The paper reports almost every result either as a median over a per-AS or
//! per-IID population (Algorithms 1 and 2) or as an empirical CDF (Figures 4,
//! 5, 7 and 8); Table 2 adds per-device means and standard deviations of
//! probe counts.

use serde::{Deserialize, Serialize};

/// The median of a slice of orderable values, or `None` for an empty slice.
/// For even-length inputs the lower of the two middle elements is returned,
/// which keeps the result a member of the input domain (a prefix length of
/// /58 is meaningful; /57.5 is not).
pub fn median<T: Ord + Copy>(values: &[T]) -> Option<T> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    Some(sorted[(sorted.len() - 1) / 2])
}

/// The most frequent value of a slice, breaking ties toward the smaller
/// value. `None` for an empty slice. Used by the aggregation ablation that
/// compares mode- with median-based per-AS allocation inference.
pub fn mode<T: Ord + Copy>(values: &[T]) -> Option<T> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let mut best = sorted[0];
    let mut best_count = 0usize;
    let mut current = sorted[0];
    let mut count = 0usize;
    for &v in &sorted {
        if v == current {
            count += 1;
        } else {
            if count > best_count {
                best = current;
                best_count = count;
            }
            current = v;
            count = 1;
        }
    }
    if count > best_count {
        best = current;
    }
    Some(best)
}

/// Arithmetic mean, or `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation, or `None` for an empty slice. Table 2
/// reports the standard deviation of daily probe counts per tracked device.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let variance = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(variance.sqrt())
}

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from samples (NaNs are dropped).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of samples ≤ `x` (the CDF evaluated at `x`).
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// The median sample.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Render the CDF as `(value, cumulative fraction)` steps, one per
    /// distinct sample value — the series a plotting tool would consume.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        let n = self.sorted.len() as f64;
        for (i, &v) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random u64s for property-style tests (no external
    /// property-testing crate is available offline).
    fn rng_stream(seed: u64) -> impl Iterator<Item = u64> {
        let mut state = seed;
        std::iter::repeat_with(move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3, 1, 2]), Some(2));
        assert_eq!(median(&[4, 1, 3, 2]), Some(2));
        assert_eq!(median::<u8>(&[]), None);
        assert_eq!(median(&[56u8, 64, 56, 64, 56]), Some(56));
    }

    #[test]
    fn mode_picks_most_frequent() {
        assert_eq!(mode(&[56u8, 64, 56, 60]), Some(56));
        assert_eq!(mode(&[64u8, 64, 56]), Some(64));
        // Ties break toward the smaller value.
        assert_eq!(mode(&[64u8, 56]), Some(56));
        assert_eq!(mode::<u8>(&[]), None);
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(std_dev(&[5.0]), Some(0.0));
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(cdf.len(), 5);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.fraction_at(0.0), 0.0);
        assert_eq!(cdf.fraction_at(2.0), 0.6);
        assert_eq!(cdf.fraction_at(100.0), 1.0);
        assert_eq!(cdf.median(), Some(2.0));
        assert_eq!(cdf.quantile(1.0), Some(10.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        let steps = cdf.steps();
        assert_eq!(steps, vec![(1.0, 0.2), (2.0, 0.6), (3.0, 0.8), (10.0, 1.0)]);
    }

    #[test]
    fn cdf_empty_and_nan_handling() {
        let empty = Cdf::from_samples([]);
        assert!(empty.is_empty());
        assert_eq!(empty.fraction_at(1.0), 0.0);
        assert_eq!(empty.median(), None);
        assert!(empty.steps().is_empty());
        let with_nan = Cdf::from_samples([1.0, f64::NAN, 2.0]);
        assert_eq!(with_nan.len(), 2);
    }

    #[test]
    fn cdf_is_monotone() {
        for case in 0..64u64 {
            let mut rng = rng_stream(case);
            let len = 1 + (rng.next().unwrap() % 99) as usize;
            let samples: Vec<f64> = rng
                .by_ref()
                .take(len)
                .map(|v| (v % 2_000_000) as f64 - 1e6)
                .collect();
            let cdf = Cdf::from_samples(samples.clone());
            let mut previous = 0.0;
            for x in [-1e7, -10.0, 0.0, 10.0, 1e7] {
                let f = cdf.fraction_at(x);
                assert!(f >= previous, "case {case}: CDF not monotone at {x}");
                assert!((0.0..=1.0).contains(&f), "case {case}: CDF out of range");
                previous = f;
            }
            assert_eq!(cdf.fraction_at(1e7), 1.0, "case {case}");
        }
    }

    #[test]
    fn median_is_between_min_and_max() {
        for case in 0..64u64 {
            let mut rng = rng_stream(0x6d65_6469 ^ case);
            let len = 1 + (rng.next().unwrap() % 49) as usize;
            let values: Vec<i32> = rng.by_ref().take(len).map(|v| v as i32).collect();
            let m = median(&values).unwrap();
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            assert!(m >= min && m <= max, "case {case}: median outside range");
        }
    }
}

//! The end-to-end prefix-rotating-provider discovery pipeline (§4).
//!
//! The pipeline chains the individual steps:
//!
//! 1. a (stale) seed traceroute campaign nominates /32s with EUI-64 periphery,
//! 2. seed expansion & validation probes one target per /48 of those /32s
//!    (§4.1),
//! 3. density inference classifies the validated /48s (§4.2),
//! 4. two snapshots 24 hours apart flag the /48s whose EUI-64 responders
//!    changed (§4.3).
//!
//! Its output is the input of Table 1 (rotating /48s per ASN and per country)
//! and the §4 prose counts (addresses discovered, EUI-64 share, unique IIDs).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use scent_bgp::{Asn, CountryCode};
use scent_ipv6::{Eui64, Ipv6Prefix};
use scent_prober::{
    ProbeTransport, Scan, Scanner, ScannerConfig, SeedCampaign, TargetGenerator, WorldView,
};
use scent_simnet::{SimDuration, SimTime};

use crate::density::DensityReport;
use crate::rotation_detect::RotationDetection;
use crate::seed_expansion::SeedExpansion;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Seed controlling target generation and scan order.
    pub seed: u64,
    /// Probe rate.
    pub packets_per_second: u64,
    /// Cap on /48s enumerated per seed /32 (bounds cost on huge
    /// announcements).
    pub max_48s_per_seed: u64,
    /// Granularity (prefix length) of the density scan; the paper probes one
    /// target per /56 of each candidate /48.
    pub density_granularity: u8,
    /// Granularity of the two rotation-detection snapshots. The paper probes
    /// every /64 (granularity 64); scaled-down worlds typically use 56 to
    /// bound probe counts, at the cost of missing /64-allocation customers
    /// that happen not to be hit.
    pub detection_granularity: u8,
    /// Virtual time of the (stale) seed traceroute campaign.
    pub seed_time: SimTime,
    /// Virtual time the expansion step runs.
    pub expansion_time: SimTime,
    /// Virtual time of the first rotation-detection snapshot (the second is
    /// 24 hours later).
    pub first_snapshot: SimTime,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0xf0110,
            packets_per_second: 10_000,
            max_48s_per_seed: 8_192,
            density_granularity: 56,
            detection_granularity: 56,
            seed_time: SimTime::at(5, 12),
            expansion_time: SimTime::at(400, 8),
            first_snapshot: SimTime::at(401, 8),
        }
    }
}

/// Per-AS and per-country rotating-/48 counts (Table 1's rows).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotatingCounts {
    /// Rotating /48 count per ASN, descending.
    pub per_asn: Vec<(Asn, u64)>,
    /// Rotating /48 count per country, descending.
    pub per_country: Vec<(CountryCode, u64)>,
    /// Total rotating /48s.
    pub total: u64,
}

impl RotatingCounts {
    /// Build Table 1 from a list of rotating /48s: counts per origin ASN and
    /// per country, sorted descending with deterministic tie-breaks. Shared
    /// by the batch pipeline and the streaming engine.
    pub fn tally(
        rib: &scent_bgp::Rib,
        registry: &scent_bgp::AsRegistry,
        rotating_48s: &[Ipv6Prefix],
    ) -> Self {
        let mut per_asn: HashMap<Asn, u64> = HashMap::new();
        let mut per_country: HashMap<CountryCode, u64> = HashMap::new();
        for prefix in rotating_48s {
            let Some(entry) = rib.lookup(prefix.network()) else {
                continue;
            };
            *per_asn.entry(entry.origin).or_insert(0) += 1;
            if let Some(country) = registry.country(entry.origin) {
                *per_country.entry(country).or_insert(0) += 1;
            }
        }
        let mut per_asn: Vec<_> = per_asn.into_iter().collect();
        per_asn.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.value().cmp(&b.0.value())));
        let mut per_country: Vec<_> = per_country.into_iter().collect();
        per_country.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.as_str().cmp(b.0.as_str())));
        RotatingCounts {
            total: rotating_48s.len() as u64,
            per_asn,
            per_country,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// /48s in the seed data with a unique EUI-64 last hop.
    pub seed_unique_48s: usize,
    /// Distinct /32s the seed rolls up to.
    pub seed_32s: usize,
    /// /48s probed during expansion.
    pub expansion_probed: u64,
    /// /48s validated as producing EUI-64 responses.
    pub validated_48s: usize,
    /// High-density candidate count.
    pub high_density: usize,
    /// Low-density candidate count.
    pub low_density: usize,
    /// Candidates with no response during the density scan.
    pub no_response: usize,
    /// /48s flagged as rotating by the two-snapshot comparison.
    pub rotating_48s: Vec<Ipv6Prefix>,
    /// Table 1 counts.
    pub rotating_counts: RotatingCounts,
    /// Total distinct addresses observed across all pipeline probing.
    pub total_addresses: usize,
    /// Distinct EUI-64 addresses among them.
    pub eui64_addresses: usize,
    /// Distinct EUI-64 interface identifiers (IIDs).
    pub unique_iids: usize,
    /// ASes with at least one rotating /48.
    pub rotating_ases: usize,
    /// Countries with at least one rotating /48.
    pub rotating_countries: usize,
}

/// The discovery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Configuration.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Run the full pipeline against any measurement backend.
    ///
    /// The backend enters only through the [`ProbeTransport`] (probing,
    /// traceroutes) and [`WorldView`] (RIB, AS metadata, world seed) traits,
    /// so the same pipeline drives the simulated Internet, a recorded replay,
    /// or any third-party backend.
    pub fn run<B: ProbeTransport + WorldView + ?Sized>(&self, world: &B) -> PipelineReport {
        let cfg = &self.config;

        // Step 0: stale seed traceroute campaign (CAIDA stand-in).
        let seed_campaign = SeedCampaign::run(world, cfg.seed_time, cfg.max_48s_per_seed);
        let seed_unique = seed_campaign.unique_eui64_48s();
        let seed_32s = seed_campaign.seed_32s();

        // Step 1: expansion & validation (§4.1).
        let expansion = SeedExpansion::run(
            world,
            &seed_32s,
            cfg.expansion_time,
            cfg.seed,
            cfg.max_48s_per_seed,
        );

        // Step 2: density inference (§4.2).
        let generator = TargetGenerator::new(cfg.seed ^ 0xdead);
        let scanner = Scanner::new(ScannerConfig {
            packets_per_second: cfg.packets_per_second,
            seed: cfg.seed,
            randomize_order: true,
        });
        let density_targets =
            generator.per_candidate_48(&expansion.validated_48s, cfg.density_granularity);
        let density_scan = scanner.scan(
            world,
            &density_targets,
            cfg.expansion_time + SimDuration::from_hours(2),
        );
        let density = DensityReport::measure(&expansion.validated_48s, &density_scan);
        let high = density.high_density();

        // Step 3: rotation detection from two snapshots 24 hours apart (§4.3).
        let detection_targets = generator.per_candidate_48(&high, cfg.detection_granularity);
        let first = scanner.scan(world, &detection_targets, cfg.first_snapshot);
        let second = scanner.scan(
            world,
            &detection_targets,
            cfg.first_snapshot + SimDuration::from_days(1),
        );
        let detection = RotationDetection::compare(&first, &second);

        // Aggregate counts.
        let rotating_counts =
            RotatingCounts::tally(world.rib(), world.as_registry(), &detection.rotating_48s);
        let (total_addresses, eui64_addresses, unique_iids) =
            address_statistics(&[&density_scan, &first, &second]);

        PipelineReport {
            seed_unique_48s: seed_unique.len(),
            seed_32s: seed_32s.len(),
            expansion_probed: expansion.probed_48s,
            validated_48s: expansion.validated_48s.len(),
            high_density: high.len(),
            low_density: density.low_density().len(),
            no_response: density.no_response().len(),
            rotating_ases: rotating_counts.per_asn.len(),
            rotating_countries: rotating_counts.per_country.len(),
            rotating_48s: detection.rotating_48s,
            rotating_counts,
            total_addresses,
            eui64_addresses,
            unique_iids,
        }
    }
}

/// Distinct addresses, distinct EUI-64 addresses and distinct IIDs observed
/// across a set of scans (the §4 prose counts).
pub fn address_statistics(scans: &[&Scan]) -> (usize, usize, usize) {
    let mut addresses = HashSet::new();
    let mut eui_addresses = HashSet::new();
    let mut iids: HashSet<Eui64> = HashSet::new();
    for scan in scans {
        for record in &scan.records {
            let Some(source) = record.source() else {
                continue;
            };
            addresses.insert(source);
            if let Some(eui) = Eui64::from_addr(source) {
                eui_addresses.insert(source);
                iids.insert(eui);
            }
        }
    }
    (addresses.len(), eui_addresses.len(), iids.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_simnet::{scenarios, Engine, WorldScale};

    fn small_pipeline_report() -> (Engine, PipelineReport) {
        let engine = Engine::build(scenarios::paper_world(71, WorldScale::small())).unwrap();
        let config = PipelineConfig {
            max_48s_per_seed: 128,
            ..PipelineConfig::default()
        };
        let report = Pipeline::new(config).run(&engine);
        (engine, report)
    }

    #[test]
    fn pipeline_finds_rotating_48s_in_rotating_ases() {
        let (engine, report) = small_pipeline_report();
        assert!(report.seed_unique_48s > 0, "seed found nothing");
        assert!(report.seed_32s > 0);
        assert!(report.validated_48s > 0);
        assert!(report.high_density > 0);
        assert!(!report.rotating_48s.is_empty(), "no rotation detected");
        assert_eq!(
            report.rotating_counts.total,
            report.rotating_48s.len() as u64
        );
        // Every flagged /48 belongs to an AS whose ground-truth configuration
        // actually rotates.
        for prefix in &report.rotating_48s {
            let asn = engine.rib().origin(prefix.network()).unwrap();
            let provider = engine
                .config()
                .providers
                .iter()
                .find(|p| p.asn == asn)
                .unwrap();
            assert!(
                provider.pools.iter().any(|pool| pool.rotation.rotates()),
                "{asn} flagged but does not rotate"
            );
        }
    }

    #[test]
    fn table1_counts_are_consistent() {
        let (_engine, report) = small_pipeline_report();
        let asn_total: u64 = report.rotating_counts.per_asn.iter().map(|(_, c)| c).sum();
        let country_total: u64 = report
            .rotating_counts
            .per_country
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(asn_total, report.rotating_counts.total);
        assert_eq!(country_total, report.rotating_counts.total);
        // Versatel (AS8881) dominates Table 1; at the small test scale it is
        // at worst neck-and-neck with OTE, so it must rank in the top two.
        let rank_8881 = report
            .rotating_counts
            .per_asn
            .iter()
            .position(|(asn, _)| *asn == Asn(8881))
            .expect("AS8881 must be detected as rotating");
        assert!(rank_8881 <= 1, "AS8881 ranked {rank_8881}");
        // Counts are sorted descending.
        for pair in report.rotating_counts.per_asn.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert!(report.rotating_ases >= 2);
        assert!(report.rotating_countries >= 1);
    }

    #[test]
    fn address_statistics_count_unique() {
        let (_engine, report) = small_pipeline_report();
        assert!(report.total_addresses >= report.eui64_addresses);
        assert!(report.eui64_addresses >= report.unique_iids);
        assert!(report.unique_iids > 0);
        // Rotation means the same IID appears under several addresses, so
        // EUI-64 addresses strictly exceed unique IIDs in a rotating world.
        assert!(report.eui64_addresses > report.unique_iids);
    }

    #[test]
    fn address_statistics_empty() {
        assert_eq!(address_statistics(&[]), (0, 0, 0));
        assert_eq!(address_statistics(&[&Scan::default()]), (0, 0, 0));
    }
}

//! Pathologies in the EUI-64 corpus (§5.5, Figures 11 and 12).
//!
//! Three phenomena complicate (or enrich) EUI-64-based tracking:
//!
//! * identifiers observed in *multiple ASes simultaneously* — almost always a
//!   manufacturer reusing MAC addresses in violation of the IEEE standard
//!   (Figure 11), or the all-zero default MAC;
//! * identifiers that *move* from one AS to another and never return — a
//!   customer switching providers (Figure 12);
//! * the all-zero MAC itself, used by devices without a burned-in address.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use scent_bgp::{Asn, Rib};
use scent_ipv6::{Eui64, MacAddr};
use scent_prober::Scan;

/// Per-identifier, per-scan-day AS observations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiAsTimeline {
    /// For each day index, the set of ASes the identifier was seen in.
    pub per_day: BTreeMap<u64, Vec<Asn>>,
}

impl MultiAsTimeline {
    /// All ASes the identifier was ever seen in.
    pub fn ases(&self) -> Vec<Asn> {
        let mut all: Vec<Asn> = self.per_day.values().flatten().copied().collect();
        all.sort_by_key(|a| a.value());
        all.dedup();
        all
    }

    /// Whether the identifier was seen in more than one AS on the same day —
    /// the signature of MAC reuse rather than a provider switch.
    pub fn concurrent_multi_as(&self) -> bool {
        self.per_day.values().any(|ases| ases.len() > 1)
    }

    /// Whether the observations look like a provider switch: the identifier
    /// appears in exactly two ASes, first only in one, later only in the
    /// other, and never again in the first after the switch.
    pub fn is_provider_switch(&self) -> Option<(Asn, Asn, u64)> {
        let ases = self.ases();
        if ases.len() != 2 || self.concurrent_multi_as() {
            return None;
        }
        let (a, b) = (ases[0], ases[1]);
        // Determine which AS is observed first.
        let first_day_a = self
            .per_day
            .iter()
            .find(|(_, v)| v.contains(&a))
            .map(|(d, _)| *d)?;
        let first_day_b = self
            .per_day
            .iter()
            .find(|(_, v)| v.contains(&b))
            .map(|(d, _)| *d)?;
        let (from, to, switch_day) = if first_day_a < first_day_b {
            (a, b, first_day_b)
        } else {
            (b, a, first_day_a)
        };
        // After the switch day the identifier must never be seen in `from`.
        let relapses = self
            .per_day
            .iter()
            .filter(|(day, ases)| **day >= switch_day && ases.contains(&from))
            .count();
        if relapses == 0 {
            Some((from, to, switch_day))
        } else {
            None
        }
    }
}

/// The pathology analysis over a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathologyReport {
    /// Identifiers observed in more than one AS, with their timelines.
    pub multi_as: HashMap<Eui64, MultiAsTimeline>,
    /// Identifiers whose timeline is consistent with a provider switch:
    /// `(from, to, switch day)`.
    pub provider_switches: HashMap<Eui64, (Asn, Asn, u64)>,
    /// Identifiers that look like vendor MAC reuse (concurrent multi-AS).
    pub mac_reuse: Vec<Eui64>,
    /// Number of ASes the all-zero MAC was observed in.
    pub zero_mac_ases: usize,
}

impl PathologyReport {
    /// Analyse a sequence of daily scans.
    pub fn analyse(scans: &[&Scan], rib: &Rib) -> Self {
        // eui -> day -> set of ASes
        let mut timelines: HashMap<Eui64, BTreeMap<u64, HashSet<Asn>>> = HashMap::new();
        for scan in scans {
            let day = scan.started_at.day();
            for record in &scan.records {
                let Some(eui) = record.eui64() else { continue };
                let source = record.source().expect("eui64 implies response");
                let Some(asn) = rib.origin(source) else {
                    continue;
                };
                timelines
                    .entry(eui)
                    .or_default()
                    .entry(day)
                    .or_default()
                    .insert(asn);
            }
        }

        let mut multi_as = HashMap::new();
        let mut provider_switches = HashMap::new();
        let mut mac_reuse = Vec::new();
        let zero_iid = Eui64::from_mac(MacAddr::ZERO);
        let mut zero_mac_ases = 0usize;

        for (eui, days) in timelines {
            let timeline = MultiAsTimeline {
                per_day: days
                    .into_iter()
                    .map(|(day, ases)| {
                        let mut v: Vec<Asn> = ases.into_iter().collect();
                        v.sort_by_key(|a| a.value());
                        (day, v)
                    })
                    .collect(),
            };
            if eui == zero_iid {
                zero_mac_ases = timeline.ases().len();
            }
            if timeline.ases().len() > 1 {
                if let Some(switch) = timeline.is_provider_switch() {
                    provider_switches.insert(eui, switch);
                } else if timeline.concurrent_multi_as() {
                    mac_reuse.push(eui);
                }
                multi_as.insert(eui, timeline);
            }
        }
        mac_reuse.sort_by_key(|e| e.as_u64());

        PathologyReport {
            multi_as,
            provider_switches,
            mac_reuse,
            zero_mac_ases,
        }
    }

    /// Number of identifiers observed in more than one AS.
    pub fn multi_as_count(&self) -> usize {
        self.multi_as.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_prober::{Campaign, Scanner, TargetGenerator};
    use scent_simnet::{scenarios, Engine, SimTime};

    /// Daily campaign over every pool of a world, at each pool's allocation
    /// granularity.
    fn run_campaign(world: scent_simnet::WorldConfig, days: u64) -> (Engine, Vec<Scan>) {
        let engine = Engine::build(world).unwrap();
        let generator = TargetGenerator::new(14);
        let mut targets = Vec::new();
        for pool in engine.pools() {
            targets
                .extend(generator.one_per_subnet(&pool.config.prefix, pool.config.allocation_len));
        }
        let scanner = Scanner::at_paper_rate(37);
        let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 10), days);
        (engine, campaign.scans)
    }

    #[test]
    fn mac_reuse_is_detected_concurrently_in_many_ases() {
        let (world, reused_mac) = scenarios::pathology_mac_reuse(111);
        let (engine, scans) = run_campaign(world, 5);
        let refs: Vec<&Scan> = scans.iter().collect();
        let report = PathologyReport::analyse(&refs, engine.rib());

        let reused_iid = Eui64::from_mac(reused_mac);
        assert!(report.multi_as_count() >= 2);
        assert!(report.mac_reuse.contains(&reused_iid));
        let timeline = &report.multi_as[&reused_iid];
        assert!(timeline.concurrent_multi_as());
        assert!(timeline.ases().len() >= 5);
        assert!(timeline.is_provider_switch().is_none());
        // The zero MAC appears in several ASes as well.
        assert!(report.zero_mac_ases >= 5);
        // A reused identifier is not misclassified as a provider switch.
        assert!(!report.provider_switches.contains_key(&reused_iid));
    }

    #[test]
    fn provider_switches_are_detected_with_direction_and_day() {
        let (world, [mac_a, mac_b]) = scenarios::pathology_provider_switch(112, 10, 20);
        let (engine, scans) = run_campaign(world, 30);
        let refs: Vec<&Scan> = scans.iter().collect();
        let report = PathologyReport::analyse(&refs, engine.rib());

        let iid_a = Eui64::from_mac(mac_a);
        let iid_b = Eui64::from_mac(mac_b);
        let (from_a, to_a, day_a) = report.provider_switches[&iid_a];
        assert_eq!((from_a, to_a), (Asn(8881), Asn(3320)));
        assert!((10..=12).contains(&day_a), "switch day {day_a}");
        let (from_b, to_b, day_b) = report.provider_switches[&iid_b];
        assert_eq!((from_b, to_b), (Asn(3320), Asn(8881)));
        assert!((20..=22).contains(&day_b), "switch day {day_b}");
        assert!(!report.mac_reuse.contains(&iid_a));
    }

    #[test]
    fn clean_world_has_no_pathologies() {
        let (engine, scans) = run_campaign(scenarios::entel_like(113), 3);
        let refs: Vec<&Scan> = scans.iter().collect();
        let report = PathologyReport::analyse(&refs, engine.rib());
        assert_eq!(report.multi_as_count(), 0);
        assert!(report.provider_switches.is_empty());
        assert!(report.mac_reuse.is_empty());
        assert_eq!(report.zero_mac_ases, 0);
    }
}

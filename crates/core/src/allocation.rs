//! Algorithm 1: customer prefix allocation size inference (§3.2.1).
//!
//! For every EUI-64 interface identifier observed in probe responses, collect
//! the *target* addresses that elicited a response carrying that identifier.
//! The span of those targets' /64 routing prefixes reveals how large a block
//! is internally routed by the same CPE — the customer's allocation. The
//! per-AS allocation size is the median over all of that AS's identifiers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use scent_bgp::{Asn, Rib};
use scent_ipv6::{network_prefix64, Eui64, Ipv6Prefix};
use scent_prober::Scan;

use crate::stats::{median, mode};

/// Per-identifier and per-AS allocation size inference.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocationInference {
    /// Inferred allocation prefix length per EUI-64 identifier.
    pub per_iid: HashMap<Eui64, u8>,
    /// AS each identifier was observed in (via RIB lookup of the response).
    pub iid_asn: HashMap<Eui64, Asn>,
    /// Median inferred allocation prefix length per AS.
    pub per_as: HashMap<Asn, u8>,
}

impl AllocationInference {
    /// Run Algorithm 1 over one or more scans.
    ///
    /// Multiple scans simply contribute more `<response, target>` pairs; the
    /// paper runs the inference over a single day of probing, but pooling
    /// several days only tightens the estimate for sparsely probed devices.
    pub fn infer(scans: &[&Scan], rib: &Rib) -> Self {
        // eui -> (min target prefix64, max target prefix64)
        let mut spans: HashMap<Eui64, (u64, u64)> = HashMap::new();
        let mut iid_asn: HashMap<Eui64, Asn> = HashMap::new();
        for scan in scans {
            for (target, source, eui) in scan.eui64_pairs() {
                let p64 = network_prefix64(target);
                let entry = spans.entry(eui).or_insert((p64, p64));
                entry.0 = entry.0.min(p64);
                entry.1 = entry.1.max(p64);
                if let Some(asn) = rib.origin(source) {
                    iid_asn.entry(eui).or_insert(asn);
                }
            }
        }

        let mut per_iid = HashMap::with_capacity(spans.len());
        let mut by_as: HashMap<Asn, Vec<u8>> = HashMap::new();
        for (eui, (min_p, max_p)) in &spans {
            let size = Ipv6Prefix::span_to_prefix_len(max_p - min_p);
            per_iid.insert(*eui, size);
            if let Some(asn) = iid_asn.get(eui) {
                by_as.entry(*asn).or_default().push(size);
            }
        }

        let per_as = by_as
            .into_iter()
            .filter_map(|(asn, sizes)| median(&sizes).map(|m| (asn, m)))
            .collect();

        AllocationInference {
            per_iid,
            iid_asn,
            per_as,
        }
    }

    /// Alternative per-AS aggregation using the mode instead of the median
    /// (compared in the `aggregation` ablation bench).
    pub fn per_as_mode(&self) -> HashMap<Asn, u8> {
        let mut by_as: HashMap<Asn, Vec<u8>> = HashMap::new();
        for (eui, size) in &self.per_iid {
            if let Some(asn) = self.iid_asn.get(eui) {
                by_as.entry(*asn).or_default().push(*size);
            }
        }
        by_as
            .into_iter()
            .filter_map(|(asn, sizes)| mode(&sizes).map(|m| (asn, m)))
            .collect()
    }

    /// The inferred allocation length for an AS, defaulting to /64 (the most
    /// conservative choice — probe every /64) when the AS was never observed.
    pub fn allocation_for(&self, asn: Asn) -> u8 {
        self.per_as.get(&asn).copied().unwrap_or(64)
    }

    /// All per-IID inferred sizes, as a plain vector (Figure 5a's CDF input).
    pub fn iid_sizes(&self) -> Vec<u8> {
        self.per_iid.values().copied().collect()
    }

    /// All per-AS inferred sizes (Figure 5b's CDF input).
    pub fn as_sizes(&self) -> Vec<u8> {
        self.per_as.values().copied().collect()
    }

    /// The probe-count saving an attacker gains from knowing the allocation
    /// size, relative to probing every /64 in the same space: `1 - 2^-(64 -
    /// len)`. For the paper's Entel example (/56 allocations) this is 99.6%.
    pub fn probe_saving(allocation_len: u8) -> f64 {
        1.0 - 1.0 / (1u64 << (64 - allocation_len.min(64))) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_prober::{Scanner, TargetGenerator};
    use scent_simnet::{scenarios, Engine, SimTime};

    fn scan_provider(world: scent_simnet::WorldConfig, granularity: u8) -> (Engine, Scan) {
        let engine = Engine::build(world).unwrap();
        let generator = TargetGenerator::new(3);
        let mut targets = Vec::new();
        for pool in engine.pools() {
            targets.extend(generator.one_per_subnet(&pool.config.prefix, granularity));
        }
        let scanner = Scanner::at_paper_rate(9);
        let scan = scanner.scan(&engine, &targets, SimTime::at(1, 8));
        (engine, scan)
    }

    #[test]
    fn infers_56_for_entel_like_provider() {
        let (engine, scan) = scan_provider(scenarios::entel_like(21), 64);
        let inference = AllocationInference::infer(&[&scan], engine.rib());
        assert!(!inference.per_iid.is_empty());
        let asn = Asn(6568);
        assert_eq!(inference.per_as.get(&asn), Some(&56));
        assert_eq!(inference.allocation_for(asn), 56);
        // Nearly all identifiers individually infer /56 as well.
        let exact = inference.per_iid.values().filter(|&&s| s == 56).count();
        assert!(exact * 10 >= inference.per_iid.len() * 8);
    }

    #[test]
    fn infers_60_for_bhtelecom_like_provider() {
        let (engine, scan) = scan_provider(scenarios::bhtelecom_like(22), 64);
        let inference = AllocationInference::infer(&[&scan], engine.rib());
        assert_eq!(inference.per_as.get(&Asn(9146)), Some(&60));
    }

    #[test]
    fn infers_64_for_starcat_like_provider() {
        let (engine, scan) = scan_provider(scenarios::starcat_like(23), 64);
        let inference = AllocationInference::infer(&[&scan], engine.rib());
        assert_eq!(inference.per_as.get(&Asn(4713)), Some(&64));
    }

    #[test]
    fn unknown_as_defaults_to_64() {
        let inference = AllocationInference::default();
        assert_eq!(inference.allocation_for(Asn(65_000)), 64);
        assert!(inference.iid_sizes().is_empty());
        assert!(inference.as_sizes().is_empty());
    }

    #[test]
    fn probe_saving_matches_paper_example() {
        // "...decreasing probing cost by 99.6%" for /56 allocations.
        let saving = AllocationInference::probe_saving(56);
        assert!((saving - 0.996).abs() < 0.001, "saving={saving}");
        assert_eq!(AllocationInference::probe_saving(64), 0.0);
        assert!(AllocationInference::probe_saving(48) > 0.9999);
    }

    #[test]
    fn mode_aggregation_close_to_median_for_clean_provider() {
        let (engine, scan) = scan_provider(scenarios::entel_like(24), 64);
        let inference = AllocationInference::infer(&[&scan], engine.rib());
        let mode_map = inference.per_as_mode();
        assert_eq!(mode_map.get(&Asn(6568)), inference.per_as.get(&Asn(6568)));
    }

    #[test]
    fn pooling_scans_only_adds_information() {
        let (engine, scan) = scan_provider(scenarios::entel_like(25), 64);
        let single = AllocationInference::infer(&[&scan], engine.rib());
        let pooled = AllocationInference::infer(&[&scan, &scan], engine.rib());
        assert_eq!(single.per_as, pooled.per_as);
        assert_eq!(single.per_iid.len(), pooled.per_iid.len());
    }
}

//! Allocation grids (Figures 3 and 6).
//!
//! Probing one target in every /64 of a /48 and colouring each cell by the
//! responding address visualises the provider's customer allocation policy:
//! /56 delegations appear as 256-cell horizontal bands, /60 delegations as
//! 16-cell runs, /64 delegations as individual pixels, and unallocated or
//! silent space as black. The grid is indexed by the 7th byte (rows) and 8th
//! byte (columns) of the probed address.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use scent_ipv6::Ipv6Prefix;
use scent_prober::{ProbeTransport, Scanner, ScannerConfig, TargetGenerator};
use scent_simnet::SimTime;

use crate::stats::median;

/// The probed allocation grid of one /48.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationGrid {
    /// The /48 that was probed.
    pub prefix: Ipv6Prefix,
    /// 256×256 cells in row-major order (row = 7th byte, column = 8th byte);
    /// each cell is the responding address for that /64, if any.
    pub cells: Vec<Option<Ipv6Addr>>,
}

impl AllocationGrid {
    /// Probe every /64 of `prefix48` at time `t` and build the grid.
    pub fn probe<T: ProbeTransport>(
        transport: &T,
        prefix48: Ipv6Prefix,
        t: SimTime,
        seed: u64,
    ) -> Self {
        assert_eq!(prefix48.len(), 48, "allocation grids are defined over /48s");
        let targets = TargetGenerator::new(seed).one_per_subnet(&prefix48, 64);
        let scanner = Scanner::new(ScannerConfig {
            seed,
            randomize_order: false,
            ..ScannerConfig::default()
        });
        let scan = scanner.scan(transport, &targets, t);
        // Targets were generated in subnet order, so record i corresponds to
        // the i-th /64 — i.e. row-major (byte 6, byte 7) order.
        let cells = scan.records.iter().map(|r| r.source()).collect();
        AllocationGrid {
            prefix: prefix48,
            cells,
        }
    }

    /// The cell for a given (7th byte, 8th byte) coordinate.
    pub fn cell(&self, row: u8, column: u8) -> Option<Ipv6Addr> {
        self.cells[row as usize * 256 + column as usize]
    }

    /// Fraction of cells with no response (the black area of the figures).
    pub fn unresponsive_fraction(&self) -> f64 {
        self.cells.iter().filter(|c| c.is_none()).count() as f64 / self.cells.len() as f64
    }

    /// Number of distinct responding addresses.
    pub fn distinct_sources(&self) -> usize {
        let mut sources: Vec<Ipv6Addr> = self.cells.iter().flatten().copied().collect();
        sources.sort();
        sources.dedup();
        sources.len()
    }

    /// Infer the customer allocation size from the grid: the median length of
    /// maximal runs of consecutive /64s answered by the same address, rounded
    /// to a power of two. This is the visual inference of Figure 3 made
    /// mechanical.
    pub fn infer_allocation_len(&self) -> Option<u8> {
        let mut run_lengths: Vec<u64> = Vec::new();
        let mut current: Option<(Ipv6Addr, u64)> = None;
        for cell in &self.cells {
            match (cell, &mut current) {
                (Some(addr), Some((running, count))) if addr == running => *count += 1,
                (Some(addr), _) => {
                    if let Some((_, count)) = current.take() {
                        run_lengths.push(count);
                    }
                    current = Some((*addr, 1));
                }
                (None, _) => {
                    if let Some((_, count)) = current.take() {
                        run_lengths.push(count);
                    }
                }
            }
        }
        if let Some((_, count)) = current.take() {
            run_lengths.push(count);
        }
        let median_run = median(&run_lengths)?;
        // A run of 2^k /64s corresponds to a /64-k allocation.
        let bits = 63 - median_run.next_power_of_two().leading_zeros().min(63) as u8;
        Some(64 - bits.min(16))
    }

    /// Render the grid as ASCII art: one character per 4×4 cell block, `.`
    /// for unresponsive space and letters cycling through distinct sources.
    /// Used by the `allocation_grid` example to eyeball Figure 3.
    pub fn render_ascii(&self) -> String {
        let mut palette: HashMap<Ipv6Addr, char> = HashMap::new();
        let glyphs: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
        let mut out = String::with_capacity(65 * 64);
        for row_block in 0..64 {
            for col_block in 0..64 {
                // Majority vote within the 4×4 block.
                let mut counts: HashMap<Option<Ipv6Addr>, usize> = HashMap::new();
                for dr in 0..4 {
                    for dc in 0..4 {
                        let cell = self.cell(row_block * 4 + dr, col_block * 4 + dc);
                        *counts.entry(cell).or_insert(0) += 1;
                    }
                }
                let (winner, _) = counts
                    .into_iter()
                    .max_by_key(|(_, count)| *count)
                    .expect("block is non-empty");
                let glyph = match winner {
                    None => '.',
                    Some(addr) => {
                        let next = glyphs[palette.len() % glyphs.len()];
                        *palette.entry(addr).or_insert(next)
                    }
                };
                out.push(glyph);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_simnet::{scenarios, Engine};

    #[test]
    fn entel_grid_shows_56_bands() {
        let engine = Engine::build(scenarios::entel_like(101)).unwrap();
        let prefix = engine.pools()[0].config.prefix;
        let grid = AllocationGrid::probe(&engine, prefix, SimTime::at(1, 10), 3);
        assert_eq!(grid.cells.len(), 65_536);
        assert_eq!(grid.infer_allocation_len(), Some(56));
        // 85% occupancy, 92% responsive: most of the grid answers.
        assert!(grid.unresponsive_fraction() < 0.4);
        assert!(grid.distinct_sources() > 100);
        // A /56 band: all 256 cells of an occupied row share one source.
        let mut banded_rows = 0;
        for row in 0..=255u8 {
            let first = grid.cell(row, 0);
            if first.is_some() && (0..=255u8).all(|col| grid.cell(row, col) == first) {
                banded_rows += 1;
            }
        }
        assert!(banded_rows > 150, "banded rows: {banded_rows}");
    }

    #[test]
    fn bhtelecom_grid_shows_60_runs() {
        let engine = Engine::build(scenarios::bhtelecom_like(102)).unwrap();
        let prefix = engine.pools()[0].config.prefix;
        let grid = AllocationGrid::probe(&engine, prefix, SimTime::at(1, 10), 3);
        assert_eq!(grid.infer_allocation_len(), Some(60));
    }

    #[test]
    fn starcat_grid_shows_64_pixels_and_unallocated_quarter() {
        let engine = Engine::build(scenarios::starcat_like(103)).unwrap();
        // The four /50 pools tile the /48 2400:d800:300::/48.
        let prefix: Ipv6Prefix = "2400:d800:300::/48".parse().unwrap();
        let grid = AllocationGrid::probe(&engine, prefix, SimTime::at(1, 10), 3);
        assert_eq!(grid.infer_allocation_len(), Some(64));
        // The top quarter (rows 0xc0..) is essentially unallocated.
        let top_quarter_unresponsive = (0xc0..=0xffu8)
            .flat_map(|row| (0..=255u8).map(move |col| (row, col)))
            .filter(|&(row, col)| grid.cell(row, col).is_none())
            .count();
        assert!(top_quarter_unresponsive > 15_000);
        assert!(grid.unresponsive_fraction() > 0.4);
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let engine = Engine::build(scenarios::entel_like(104)).unwrap();
        let prefix = engine.pools()[0].config.prefix;
        let grid = AllocationGrid::probe(&engine, prefix, SimTime::at(1, 10), 3);
        let art = grid.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 64);
        assert!(lines.iter().all(|l| l.chars().count() == 64));
        // Both occupied and unoccupied space appear.
        assert!(art.contains('.'));
        assert!(art.chars().any(|c| c.is_ascii_alphanumeric()));
    }

    #[test]
    #[should_panic(expected = "allocation grids are defined over /48s")]
    fn grids_require_a_48() {
        let engine = Engine::build(scenarios::entel_like(105)).unwrap();
        AllocationGrid::probe(
            &engine,
            "2803:9810::/32".parse().unwrap(),
            SimTime::at(1, 10),
            3,
        );
    }
}

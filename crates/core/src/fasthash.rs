//! A fast, deterministic hasher for the per-observation hot containers.
//!
//! The streaming engine's classify step touches several hash maps for every
//! observation it folds (the rotation detector's per-target state, the
//! tracker's per-(window, /48) probe counts, the per-shard address sets).
//! `std`'s default hasher is SipHash-1-3 behind a per-map random seed —
//! excellent DoS resistance, but tens of nanoseconds per 16-byte key, and
//! the random seed makes iteration order differ run to run. Neither property
//! is wanted here: every key is engine-internal (probe targets and prefixes
//! the engine generated itself, never attacker-chosen), and the whole
//! codebase is built around determinism.
//!
//! [`FastState`] replaces it with a fixed-seed multiply-rotate hash
//! (word-at-a-time mixing, splitmix64-style finalizer): a few nanoseconds
//! per key, identical bucket order on every run of every platform. Use the
//! [`FastMap`]/[`FastSet`] aliases for any container on the per-observation
//! path; keep `std`'s default for anything that could ever key on external
//! input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// A `HashMap` on the deterministic fast hasher ([`FastState`]).
pub type FastMap<K, V> = HashMap<K, V, FastState>;

/// A `HashSet` on the deterministic fast hasher ([`FastState`]).
pub type FastSet<T> = HashSet<T, FastState>;

const SEED: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / golden ratio

/// Fixed-seed [`BuildHasher`] producing [`FastHasher`]s. Zero-sized, so a
/// `FastMap` is exactly as big as a plain `HashMap`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastState;

impl BuildHasher for FastState {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher { state: SEED }
    }
}

/// A multiply-rotate streaming hasher over 64-bit words.
///
/// Every fixed-width write is overridden to mix the value directly (the
/// default implementations round-trip through native-endian bytes, which
/// would make hashes platform-dependent); byte slices are consumed in
/// little-endian 64-bit chunks with the tail zero-padded and
/// length-separated.
#[derive(Debug, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(SEED).rotate_left(29);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: spreads the mixed state across all bits so
        // the low bits (what power-of-two bucket masks keep) are well mixed.
        let mut x = self.state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Length first, so "" then "ab" never collides with "a" then "b".
        self.mix(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;
    use std::net::Ipv6Addr;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        FastState.hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(hash_of(&addr), hash_of(&addr));
        assert_eq!(hash_of(&(3u64, addr)), hash_of(&(3u64, addr)));
    }

    #[test]
    fn distinct_keys_hash_apart() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let b: Ipv6Addr = "2001:db8::2".parse().unwrap();
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&(0u64, a)), hash_of(&(1u64, a)));
        // Chunk-boundary safety: same bytes, different split.
        assert_ne!(hash_of(&[0u8; 8][..]), hash_of(&[0u8; 9][..]));
    }

    #[test]
    fn low_bits_spread_over_sequential_keys() {
        // HashMap keeps only the low bits of the hash for bucket selection;
        // sequential integer keys must not collapse into a few buckets.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..256u64 {
            buckets.insert(hash_of(&i) & 0xff);
        }
        assert!(buckets.len() > 128, "only {} of 256 buckets", buckets.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FastMap<Ipv6Addr, u64> = FastMap::default();
        map.insert("2001:db8::1".parse().unwrap(), 1);
        map.insert("2001:db8::2".parse().unwrap(), 2);
        assert_eq!(map.len(), 2);
        let mut set: FastSet<u64> = FastSet::default();
        set.insert(9);
        assert!(set.contains(&9));
    }
}

//! Plain-text table rendering for the experiment binaries.
//!
//! Every experiment prints the rows/series the corresponding paper table or
//! figure reports, so the output can be compared side-by-side with the paper
//! (EXPERIMENTS.md records that comparison). This module keeps the
//! column-aligned rendering in one place.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.chars().count())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Format a prefix length as `/NN`.
pub fn slash(len: u8) -> String {
    format!("/{len}")
}

/// Format a `(value, fraction)` CDF series as `value:cumulative` pairs, a
/// compact representation the experiment binaries print for each figure.
pub fn cdf_series(steps: &[(f64, f64)]) -> String {
    steps
        .iter()
        .map(|(value, fraction)| format!("{value:.0}:{fraction:.3}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(["ASN", "# /48"]);
        table.row(["8881", "5149"]);
        table.row(["6799", "3386"]);
        table.row(["Total", "12885"]);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("ASN"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("8881"));
        assert!(lines[4].contains("Total"));
        // Columns align: "5149" and "3386" start at the same offset.
        let offset = lines[2].find("5149").unwrap();
        assert_eq!(lines[3].find("3386").unwrap(), offset);
    }

    #[test]
    fn short_and_long_rows_are_normalised() {
        let mut table = TextTable::new(["a", "b", "c"]);
        table.row(["1"]);
        table.row(["1", "2", "3", "4"]);
        let rendered = table.render();
        assert!(rendered.contains('1'));
        assert!(!rendered.contains('4'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.9964), "99.6%");
        assert_eq!(slash(56), "/56");
        assert_eq!(cdf_series(&[(56.0, 0.5), (64.0, 1.0)]), "56:0.500 64:1.000");
        assert_eq!(cdf_series(&[]), "");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let table = TextTable::new(["x", "y"]);
        assert!(table.is_empty());
        let rendered = table.render();
        assert_eq!(rendered.lines().count(), 2);
    }
}

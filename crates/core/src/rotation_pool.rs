//! Algorithm 2: rotation pool size inference (§3.2.2).
//!
//! For every EUI-64 identifier, collect the *response* addresses observed
//! over time (across scans). The span of their /64 routing prefixes is the
//! distance the device's delegation has travelled — the rotation pool it
//! moves within. The per-AS pool size is the median over that AS's
//! identifiers; an identifier seen in a single /64 contributes /64
//! (no observed rotation).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use scent_bgp::{Asn, Rib};
use scent_ipv6::{network_prefix64, Eui64, Ipv6Prefix};
use scent_prober::Scan;

use crate::stats::median;

/// Per-identifier and per-AS rotation pool inference.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RotationPoolInference {
    /// Inferred rotation-pool prefix length per EUI-64 identifier.
    pub per_iid: HashMap<Eui64, u8>,
    /// AS each identifier maps to.
    pub iid_asn: HashMap<Eui64, Asn>,
    /// Median inferred pool length per AS.
    pub per_as: HashMap<Asn, u8>,
    /// The lowest response address observed per identifier — the anchor an
    /// attacker uses to place the inferred pool in the address space.
    pub anchor: HashMap<Eui64, std::net::Ipv6Addr>,
    /// The encompassing BGP prefix length per AS (median over responses),
    /// plotted against the pool size in Figure 7.
    pub bgp_prefix_len: HashMap<Asn, u8>,
}

impl RotationPoolInference {
    /// Run Algorithm 2 over a set of scans (typically one per day).
    pub fn infer(scans: &[&Scan], rib: &Rib) -> Self {
        let mut spans: HashMap<Eui64, (u64, u64)> = HashMap::new();
        let mut anchor: HashMap<Eui64, std::net::Ipv6Addr> = HashMap::new();
        let mut iid_asn: HashMap<Eui64, Asn> = HashMap::new();
        let mut bgp_lens: HashMap<Asn, Vec<u8>> = HashMap::new();

        for scan in scans {
            for record in &scan.records {
                let Some(eui) = record.eui64() else { continue };
                let source = record.source().expect("eui64 implies a response");
                let p64 = network_prefix64(source);
                let entry = spans.entry(eui).or_insert((p64, p64));
                entry.0 = entry.0.min(p64);
                entry.1 = entry.1.max(p64);
                anchor
                    .entry(eui)
                    .and_modify(|a| {
                        if source < *a {
                            *a = source;
                        }
                    })
                    .or_insert(source);
                if let Some(rib_entry) = rib.lookup(source) {
                    iid_asn.entry(eui).or_insert(rib_entry.origin);
                    bgp_lens
                        .entry(rib_entry.origin)
                        .or_default()
                        .push(rib_entry.prefix.len());
                }
            }
        }

        let mut per_iid = HashMap::with_capacity(spans.len());
        let mut by_as: HashMap<Asn, Vec<u8>> = HashMap::new();
        for (eui, (min_p, max_p)) in &spans {
            let size = Ipv6Prefix::span_to_prefix_len(max_p - min_p);
            per_iid.insert(*eui, size);
            if let Some(asn) = iid_asn.get(eui) {
                by_as.entry(*asn).or_default().push(size);
            }
        }
        let per_as = by_as
            .into_iter()
            .filter_map(|(asn, sizes)| median(&sizes).map(|m| (asn, m)))
            .collect();
        let bgp_prefix_len = bgp_lens
            .into_iter()
            .filter_map(|(asn, lens)| median(&lens).map(|m| (asn, m)))
            .collect();

        RotationPoolInference {
            per_iid,
            iid_asn,
            per_as,
            anchor,
            bgp_prefix_len,
        }
    }

    /// The inferred pool length for an AS; /64 (i.e. "no rotation observed")
    /// when the AS was never observed.
    pub fn pool_for(&self, asn: Asn) -> u8 {
        self.per_as.get(&asn).copied().unwrap_or(64)
    }

    /// Whether the AS exhibits measurable rotation (pool larger than a /64).
    pub fn rotates(&self, asn: Asn) -> bool {
        self.pool_for(asn) < 64
    }

    /// The concrete pool prefix an attacker would scan for a given
    /// identifier: the inferred per-AS pool length anchored at the lowest
    /// observed response address.
    pub fn pool_prefix_for(&self, eui: Eui64) -> Option<Ipv6Prefix> {
        let asn = self.iid_asn.get(&eui)?;
        let len = self.pool_for(*asn);
        let anchor = self.anchor.get(&eui)?;
        Ipv6Prefix::new(*anchor, len).ok()
    }

    /// Per-AS inferred pool lengths (Figure 7's first CDF input).
    pub fn as_pool_sizes(&self) -> Vec<u8> {
        self.per_as.values().copied().collect()
    }

    /// Per-AS encompassing BGP prefix lengths (Figure 7's second CDF input).
    pub fn as_bgp_sizes(&self) -> Vec<u8> {
        self.bgp_prefix_len.values().copied().collect()
    }

    /// The median "cost saving" exponent of Figure 7: for each AS the
    /// difference between pool length and BGP prefix length in bits (≈16 in
    /// the paper: devices rotate within 1/2¹⁶ of the announced space).
    pub fn median_search_space_reduction_bits(&self) -> Option<u8> {
        let diffs: Vec<u8> = self
            .per_as
            .iter()
            .filter_map(|(asn, &pool)| {
                self.bgp_prefix_len
                    .get(asn)
                    .map(|&bgp| pool.saturating_sub(bgp))
            })
            .collect();
        median(&diffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_prober::{Campaign, Scanner, TargetGenerator};
    use scent_simnet::{scenarios, Engine, SimTime};

    /// Run a short daily campaign against the Versatel-like provider at /56
    /// granularity over its /56-allocation pools.
    fn versatel_campaign(days: u64) -> (Engine, Vec<Scan>) {
        let engine = Engine::build(scenarios::versatel_like(31)).unwrap();
        let generator = TargetGenerator::new(5);
        let mut targets = Vec::new();
        for pool in engine.pools() {
            if pool.config.allocation_len == 56 {
                targets.extend(generator.one_per_subnet(&pool.config.prefix, 56));
            }
        }
        let scanner = Scanner::at_paper_rate(11);
        let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 9), days);
        (engine, campaign.scans)
    }

    #[test]
    fn single_snapshot_infers_no_rotation() {
        let (engine, scans) = versatel_campaign(1);
        let refs: Vec<&Scan> = scans.iter().collect();
        let inference = RotationPoolInference::infer(&refs, engine.rib());
        // With one snapshot every identifier sits in exactly one /64.
        assert!(inference.per_iid.values().all(|&len| len == 64));
        assert!(!inference.rotates(Asn(8881)));
    }

    #[test]
    fn multi_day_campaign_reveals_the_46_pool() {
        let (engine, scans) = versatel_campaign(20);
        let refs: Vec<&Scan> = scans.iter().collect();
        let inference = RotationPoolInference::infer(&refs, engine.rib());
        assert!(inference.rotates(Asn(8881)));
        let pool = inference.pool_for(Asn(8881));
        // Daily step of 96 slots over 20 days covers ~1920 of the 1024-slot
        // pool (wrapping), so the observed span approaches the true /46.
        assert!(pool <= 48, "inferred pool /{pool} should be /48 or wider");
        assert!(
            pool >= 44,
            "inferred pool /{pool} should not exceed the /44 span"
        );
        // The BGP prefix is the /32 announcement, giving a ≥12-bit search
        // space reduction.
        assert_eq!(inference.bgp_prefix_len.get(&Asn(8881)), Some(&32));
        let reduction = inference.median_search_space_reduction_bits().unwrap();
        assert!(reduction >= 12, "reduction={reduction}");
    }

    #[test]
    fn pool_prefix_anchors_contain_observations() {
        let (engine, scans) = versatel_campaign(10);
        let refs: Vec<&Scan> = scans.iter().collect();
        let inference = RotationPoolInference::infer(&refs, engine.rib());
        let mut checked = 0;
        for (&eui, &_len) in inference.per_iid.iter().take(50) {
            let pool = inference.pool_prefix_for(eui).unwrap();
            let anchor = inference.anchor[&eui];
            assert!(pool.contains(anchor));
            checked += 1;
        }
        assert!(checked > 0);
        // Unknown identifier has no pool.
        let unknown = Eui64::from_mac("00:11:22:33:44:55".parse().unwrap());
        assert_eq!(inference.pool_prefix_for(unknown), None);
    }

    #[test]
    fn static_provider_pools_are_64() {
        let engine = Engine::build(scenarios::starcat_like(32)).unwrap();
        let generator = TargetGenerator::new(5);
        let mut targets = Vec::new();
        for pool in engine.pools() {
            targets.extend(generator.one_per_subnet(&pool.config.prefix, 64));
        }
        let scanner = Scanner::at_paper_rate(11);
        let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 9), 5);
        let refs: Vec<&Scan> = campaign.scans.iter().collect();
        let inference = RotationPoolInference::infer(&refs, engine.rib());
        assert_eq!(inference.pool_for(Asn(4713)), 64);
        assert!(!inference.rotates(Asn(4713)));
    }

    #[test]
    fn default_inference_is_conservative() {
        let inference = RotationPoolInference::default();
        assert_eq!(inference.pool_for(Asn(1)), 64);
        assert!(!inference.rotates(Asn(1)));
        assert!(inference.as_pool_sizes().is_empty());
        assert!(inference.as_bgp_sizes().is_empty());
        assert_eq!(inference.median_search_space_reduction_bits(), None);
    }
}

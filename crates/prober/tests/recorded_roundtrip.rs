//! Round-trip property tests for the record/replay backends: recording a
//! deterministic run, replaying it, and re-recording the replay must yield an
//! identical [`ProbeLog`] — including when the probing side is sharded across
//! concurrent producer threads, whose wall-clock capture order the canonical
//! log ordering must erase.

use proptest::prelude::*;

use scent_prober::{
    slice_bounds, ProbeLog, ProbeTransport, RecordedBackend, RecordingBackend, Scanner,
    ScannerConfig, TargetGenerator, Tracer,
};
use scent_simnet::{scenarios, Engine, SimTime};

/// Record one scan (and a couple of traceroutes) against `backend`.
fn record_run<B: ProbeTransport + scent_prober::WorldView + ?Sized>(
    backend: &B,
    targets: &[std::net::Ipv6Addr],
    scan_seed: u64,
    start: SimTime,
) -> ProbeLog {
    let recorder = RecordingBackend::new(backend);
    let config = ScannerConfig {
        seed: scan_seed,
        ..ScannerConfig::default()
    };
    Scanner::new(config).scan(&recorder, targets, start);
    let trace_targets: Vec<_> = targets.iter().copied().take(3).collect();
    Tracer::default().trace_all(&recorder, &trace_targets, start);
    recorder.finish()
}

/// Record the same probe set from `producers` concurrent threads, each
/// probing its contiguous slice of the paced schedule — the transport-level
/// shape of the streaming engine's sharded producers.
fn record_sharded<B: ProbeTransport + scent_prober::WorldView + ?Sized + Sync>(
    backend: &B,
    targets: &[std::net::Ipv6Addr],
    producers: usize,
    start: SimTime,
) -> ProbeLog {
    let recorder = RecordingBackend::new(backend);
    std::thread::scope(|scope| {
        for k in 0..producers {
            let (lo, hi) = slice_bounds(targets.len(), k, producers);
            let recorder = &recorder;
            scope.spawn(move || {
                for (pos, target) in targets[lo..hi].iter().enumerate() {
                    // The paced schedule of `Scanner` at 10 kpps in list
                    // order: position / rate seconds after start.
                    let at =
                        start + scent_simnet::SimDuration::from_secs((lo + pos) as u64 / 10_000);
                    recorder.probe(*target, at);
                }
            });
        }
    });
    recorder.finish()
}

proptest! {
    // record → replay → re-record is the identity on canonical logs.
    #[test]
    fn replaying_and_rerecording_is_identity(
        world_seed in 1u64..1_000_000,
        scan_seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let engine = Engine::build(scenarios::entel_like(world_seed)).unwrap();
        let pool = engine.pools()[0].config.prefix;
        let mut targets = TargetGenerator::new(scan_seed).one_per_subnet(&pool, 60);
        targets.truncate(len);
        let start = SimTime::at(1, 9);

        let first = record_run(&engine, &targets, scan_seed, start);
        prop_assert_eq!(first.len(), targets.len());

        let replay = RecordedBackend::from_log(first.clone());
        let second = record_run(&replay, &targets, scan_seed, start);
        // Re-recording the replay must reproduce the log.
        prop_assert_eq!(&first, &second);

        // And a third generation, to rule out one-shot fixed points.
        let replay = RecordedBackend::from_log(second.clone());
        let third = record_run(&replay, &targets, scan_seed, start);
        prop_assert_eq!(&second, &third);
    }

    // The same identity holds when the recording run probes from concurrent
    // sharded producers: canonical ordering erases thread interleaving.
    #[test]
    fn sharded_producer_recording_is_canonical(
        world_seed in 1u64..1_000_000,
        scan_seed in any::<u64>(),
        len in 1usize..300,
        producers in 2usize..=8,
    ) {
        let engine = Engine::build(scenarios::entel_like(world_seed)).unwrap();
        let pool = engine.pools()[0].config.prefix;
        let mut targets = TargetGenerator::new(scan_seed).one_per_subnet(&pool, 60);
        targets.truncate(len);
        let start = SimTime::at(1, 9);

        let single = record_sharded(&engine, &targets, 1, start);
        let sharded = record_sharded(&engine, &targets, producers, start);
        // Canonical order must erase the thread interleaving.
        prop_assert_eq!(&single, &sharded);

        // Replaying the sharded capture and re-recording it — again through
        // sharded producers — still reproduces the log bit for bit.
        let replay = RecordedBackend::from_log(sharded.clone());
        let rerecorded = record_sharded(&replay, &targets, producers, start);
        prop_assert_eq!(&sharded, &rerecorded);
    }
}

/// A duplicate `(target, second)` pair keeps its last-recorded outcome after
/// the canonical sort (the sort is stable), so replay semantics survive the
/// reordering.
#[test]
fn canonical_order_preserves_replay_of_duplicates() {
    let engine = Engine::build(scenarios::entel_like(5)).unwrap();
    let pool = engine.pools()[0].config.prefix;
    let target = TargetGenerator::new(1).random_addr_in(&pool);
    let t = SimTime::at(1, 9);

    let recorder = RecordingBackend::new(&engine);
    let live_first = recorder.probe(target, t);
    let live_second = recorder.probe(target, t);
    assert_eq!(live_first, live_second, "deterministic world, same outcome");
    let log = recorder.finish();
    assert_eq!(log.len(), 2);

    let replay = RecordedBackend::from_log(log);
    let replayed = replay.probe(target, t);
    assert_eq!(
        replayed.map(|r| (r.source, r.kind)),
        live_second.map(|r| (r.source, r.kind))
    );
}

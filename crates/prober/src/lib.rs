//! High-speed active probing over a probe transport.
//!
//! The paper's measurements are driven by two tools: the zmap6 IPv6
//! extensions of zmap (stateless, randomized-order, high-rate ICMPv6 Echo
//! Request scanning) and yarrp (stateless randomized traceroute). This crate
//! reimplements the scanning semantics of both against an abstract
//! *measurement backend*, described by two traits:
//!
//! * [`ProbeTransport`] — anything that can answer probes and traceroutes
//!   (the data plane);
//! * [`WorldView`] — anything that can answer the control-plane questions the
//!   methodology needs (the vantage address, the BGP RIB of announced
//!   prefixes, AS metadata, and the campaign seed).
//!
//! In this repository the canonical backend is the simulated Internet of
//! `scent-simnet`, and [`RecordedBackend`] replays previously captured probe
//! logs; the same scanner and pipeline logic would drive raw sockets plus a
//! Routeviews table. Every generic probing entry point is `?Sized`-friendly,
//! so `&dyn MeasurementBackend` trait objects work wherever a concrete
//! backend does.
//!
//! * [`permutation`] — zmap's trick of iterating targets in a pseudo-random
//!   but stateless and reproducible order (a full-cycle permutation derived
//!   from the scan seed). The paper probes "the same addresses every 24 hours
//!   in the same order (same zmap random seed)"; [`RandomPermutation`] is
//!   what makes that reproducibility possible.
//! * [`rate`] — token-bucket pacing at a configurable packets-per-second
//!   budget against the virtual clock (the paper probes at 10 kpps).
//! * [`targets`] — target generation: one pseudo-random IID per subnet of a
//!   prefix at a chosen granularity (/64, /56, per-allocation, …).
//! * [`zmap6`] — the scanner itself and multi-day campaign scheduling.
//! * [`yarrp`] — randomized traceroute used for the seed campaign and for
//!   last-hop (periphery) discovery.
//! * [`seed`] — the CAIDA-style seed traceroute campaign that bootstraps the
//!   discovery pipeline.
//! * [`recorded`] — record/replay backends: capture a live run's probe log,
//!   then replay it as a [`MeasurementBackend`] of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod permutation;
pub mod rate;
pub mod recorded;
pub mod records;
pub mod seed;
pub mod targets;
pub mod yarrp;
pub mod zmap6;

pub use permutation::RandomPermutation;
pub use rate::{
    FeedbackPacer, ProbePacer, QueueModel, QueuePacer, RateTransition, TokenBucket, VirtualQueue,
};
pub use recorded::{ProbeLog, RecordedBackend, RecordedTrace, RecordedWorld, RecordingBackend};
pub use records::{ProbeRecord, ResponseRecord, Scan};
pub use seed::{SeedCampaign, SeedEntry};
pub use targets::{slice_bounds, StreamedTarget, TargetGenerator, TargetStream};
pub use yarrp::{TraceRecord, Tracer};
pub use zmap6::{Campaign, Scanner, ScannerConfig};

use std::net::Ipv6Addr;

use scent_bgp::{AsRegistry, Rib};
use scent_simnet::{Engine, ProbeReply, SimTime, TraceHop};

/// Anything that can answer probes: the boundary between the measurement
/// tooling and the network (real or simulated) underneath it.
pub trait ProbeTransport: Sync {
    /// Send one ICMPv6 Echo Request to `target` at virtual time `t` and
    /// return the elicited response, if any.
    fn probe(&self, target: Ipv6Addr, t: SimTime) -> Option<ProbeReply>;

    /// Run a hop-limited traceroute toward `target`.
    fn trace(&self, target: Ipv6Addr, t: SimTime, max_hops: u8) -> Vec<TraceHop>;
}

/// The control-plane side of a measurement backend: where the measurement
/// runs from, what the routing table says, and the metadata the analyses
/// join against. Together with [`ProbeTransport`] this is everything the
/// discovery pipeline and the streaming monitor need — they never touch a
/// concrete engine type.
pub trait WorldView: Sync {
    /// The measurement vantage point's source address.
    fn vantage(&self) -> Ipv6Addr;

    /// The BGP RIB: every announced prefix and its origin AS. This doubles as
    /// the announced-prefix enumeration the seed campaign walks and the
    /// shard-routing key space of the streaming engine.
    fn rib(&self) -> &Rib;

    /// Metadata (name, country) for the ASes in the RIB.
    fn as_registry(&self) -> &AsRegistry;

    /// The world/campaign seed deterministic target derivation is keyed on.
    fn world_seed(&self) -> u64;
}

/// A complete measurement backend: probe data plane plus control-plane world
/// view. Blanket-implemented for everything that has both halves, and
/// dyn-safe, so heterogeneous backends can sit behind
/// `&dyn MeasurementBackend`.
pub trait MeasurementBackend: ProbeTransport + WorldView {}

impl<T: ProbeTransport + WorldView + ?Sized> MeasurementBackend for T {}

impl ProbeTransport for Engine {
    fn probe(&self, target: Ipv6Addr, t: SimTime) -> Option<ProbeReply> {
        Engine::probe(self, target, t)
    }

    fn trace(&self, target: Ipv6Addr, t: SimTime, max_hops: u8) -> Vec<TraceHop> {
        Engine::trace(self, target, t, max_hops)
    }
}

impl WorldView for Engine {
    fn vantage(&self) -> Ipv6Addr {
        Engine::vantage(self)
    }

    fn rib(&self) -> &Rib {
        Engine::rib(self)
    }

    fn as_registry(&self) -> &AsRegistry {
        Engine::as_registry(self)
    }

    fn world_seed(&self) -> u64 {
        self.config().seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_simnet::scenarios;

    #[test]
    fn dyn_measurement_backend_probes_and_views() {
        let engine = Engine::build(scenarios::versatel_like(3)).unwrap();
        let backend: &dyn MeasurementBackend = &engine;
        assert_eq!(backend.vantage(), engine.vantage());
        assert_eq!(backend.world_seed(), engine.config().seed);
        assert_eq!(backend.rib().len(), engine.rib().len());
        // Supertrait methods dispatch through the trait object.
        let pool = engine.pools()[0].config.prefix;
        let target = TargetGenerator::new(1).random_addr_in(&pool);
        let t = SimTime::at(1, 12);
        assert_eq!(backend.probe(target, t), engine.probe(target, t));
        assert_eq!(
            backend.trace(target, t, 32).len(),
            engine.trace(target, t, 32).len()
        );
    }
}

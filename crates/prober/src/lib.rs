//! High-speed active probing over a probe transport.
//!
//! The paper's measurements are driven by two tools: the zmap6 IPv6
//! extensions of zmap (stateless, randomized-order, high-rate ICMPv6 Echo
//! Request scanning) and yarrp (stateless randomized traceroute). This crate
//! reimplements the scanning semantics of both against an abstract
//! [`ProbeTransport`] — in this repository the transport is the simulated
//! Internet of `scent-simnet`, but the same scanner logic would drive raw
//! sockets.
//!
//! * [`permutation`] — zmap's trick of iterating targets in a pseudo-random
//!   but stateless and reproducible order (a full-cycle permutation derived
//!   from the scan seed). The paper probes "the same addresses every 24 hours
//!   in the same order (same zmap random seed)"; [`RandomPermutation`] is
//!   what makes that reproducibility possible.
//! * [`rate`] — token-bucket pacing at a configurable packets-per-second
//!   budget against the virtual clock (the paper probes at 10 kpps).
//! * [`targets`] — target generation: one pseudo-random IID per subnet of a
//!   prefix at a chosen granularity (/64, /56, per-allocation, …).
//! * [`zmap6`] — the scanner itself and multi-day campaign scheduling.
//! * [`yarrp`] — randomized traceroute used for the seed campaign and for
//!   last-hop (periphery) discovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod permutation;
pub mod rate;
pub mod records;
pub mod targets;
pub mod yarrp;
pub mod zmap6;

pub use permutation::RandomPermutation;
pub use rate::{FeedbackPacer, ProbePacer, TokenBucket};
pub use records::{ProbeRecord, ResponseRecord, Scan};
pub use targets::{StreamedTarget, TargetGenerator, TargetStream};
pub use yarrp::{TraceRecord, Tracer};
pub use zmap6::{Campaign, Scanner, ScannerConfig};

use std::net::Ipv6Addr;

use scent_simnet::{Engine, ProbeReply, SimTime, TraceHop};

/// Anything that can answer probes: the boundary between the measurement
/// tooling and the network (real or simulated) underneath it.
pub trait ProbeTransport: Sync {
    /// Send one ICMPv6 Echo Request to `target` at virtual time `t` and
    /// return the elicited response, if any.
    fn probe(&self, target: Ipv6Addr, t: SimTime) -> Option<ProbeReply>;

    /// Run a hop-limited traceroute toward `target`.
    fn trace(&self, target: Ipv6Addr, t: SimTime, max_hops: u8) -> Vec<TraceHop>;
}

impl ProbeTransport for Engine {
    fn probe(&self, target: Ipv6Addr, t: SimTime) -> Option<ProbeReply> {
        Engine::probe(self, target, t)
    }

    fn trace(&self, target: Ipv6Addr, t: SimTime, max_hops: u8) -> Vec<TraceHop> {
        Engine::trace(self, target, t, max_hops)
    }
}

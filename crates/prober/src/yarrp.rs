//! yarrp-style randomized traceroute.
//!
//! yarrp (Beverly, IMC 2016) performs high-speed topology discovery by
//! randomizing `(target, TTL)` probes and reconstructing paths statelessly.
//! The reproduction only needs its end product — the last responsive hop per
//! target, which for targets inside customer delegations is the CPE WAN
//! interface — so [`Tracer`] walks TTLs per target against the transport and
//! records the full hop list plus the last responsive hop. Target order is
//! randomized with the same permutation machinery the scanner uses.

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use scent_ipv6::Eui64;
use scent_simnet::{SimTime, TraceHop};

use crate::permutation::RandomPermutation;
use crate::rate::ProbePacer;
use crate::ProbeTransport;

/// The result of tracerouting one target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The traceroute destination.
    pub target: Ipv6Addr,
    /// All hops elicited, in TTL order.
    pub hops: Vec<TraceHop>,
    /// The last responsive hop, if any hop responded.
    pub last_hop: Option<Ipv6Addr>,
}

impl TraceRecord {
    /// Build a record from a raw hop list, deriving the last responsive hop.
    /// The single definition of "last responsive hop" every consumer (tracer,
    /// seed campaign, record/replay) shares.
    pub fn from_hops(target: Ipv6Addr, hops: Vec<TraceHop>) -> Self {
        let last_hop = hops.iter().filter_map(|h| h.addr).next_back();
        TraceRecord {
            target,
            hops,
            last_hop,
        }
    }

    /// Whether the last responsive hop carries an EUI-64 IID (i.e. looks like
    /// a CPE periphery interface rather than core infrastructure).
    pub fn last_hop_is_eui64(&self) -> bool {
        self.last_hop.map(Eui64::addr_is_eui64).unwrap_or(false)
    }
}

/// A yarrp-style traceroute engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tracer {
    /// Maximum TTL probed per target.
    pub max_hops: u8,
    /// Probe rate in packets per second.
    pub packets_per_second: u64,
    /// Seed controlling target order.
    pub seed: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            max_hops: 32,
            packets_per_second: 10_000,
            seed: 0x79a7,
        }
    }
}

impl Tracer {
    /// Trace every target, in randomized order, starting at `start`.
    pub fn trace_all<T: ProbeTransport + ?Sized>(
        &self,
        transport: &T,
        targets: &[Ipv6Addr],
        start: SimTime,
    ) -> Vec<TraceRecord> {
        let pacer = ProbePacer::new(start, self.packets_per_second);
        let order = RandomPermutation::new(targets.len() as u64, self.seed);
        let mut records = Vec::with_capacity(targets.len());
        let mut probes_sent = 0u64;
        for index in order.iter() {
            let target = targets[index as usize];
            let t = pacer.send_time(probes_sent);
            let hops = transport.trace(target, t, self.max_hops);
            probes_sent += hops.len().max(1) as u64;
            records.push(TraceRecord::from_hops(target, hops));
        }
        records
    }

    /// Trace every target and keep only records whose last responsive hop
    /// carries an EUI-64 IID — the periphery-discovery filter of the seed
    /// campaign.
    pub fn eui64_last_hops<T: ProbeTransport + ?Sized>(
        &self,
        transport: &T,
        targets: &[Ipv6Addr],
        start: SimTime,
    ) -> Vec<TraceRecord> {
        self.trace_all(transport, targets, start)
            .into_iter()
            .filter(|r| r.last_hop_is_eui64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::TargetGenerator;
    use scent_simnet::{scenarios, Engine};

    fn engine() -> Engine {
        Engine::build(scenarios::versatel_like(5)).unwrap()
    }

    #[test]
    fn traceroutes_reach_the_periphery() {
        let engine = engine();
        // One target per /56 of one /46 pool of AS8881.
        let pool = engine.pools()[3].config.prefix;
        let targets = TargetGenerator::new(2).one_per_subnet(&pool, 56);
        let tracer = Tracer::default();
        let records = tracer.trace_all(&engine, &targets, SimTime::at(1, 10));
        assert_eq!(records.len(), targets.len());
        let with_cpe: Vec<_> = records.iter().filter(|r| r.last_hop_is_eui64()).collect();
        assert!(!with_cpe.is_empty());
        for record in &with_cpe {
            // The CPE hop is one past the provider core.
            assert!(record.hops.len() > 1);
            assert_eq!(record.last_hop, record.hops.last().unwrap().addr);
        }
        // The filtering helper returns exactly the EUI-64 subset.
        let filtered = tracer.eui64_last_hops(&engine, &targets, SimTime::at(1, 10));
        assert_eq!(filtered.len(), with_cpe.len());
    }

    #[test]
    fn unrouted_targets_produce_empty_traces() {
        let engine = engine();
        let tracer = Tracer::default();
        let records = tracer.trace_all(&engine, &["3fff::1".parse().unwrap()], SimTime::at(1, 10));
        assert_eq!(records.len(), 1);
        assert!(records[0].hops.is_empty());
        assert_eq!(records[0].last_hop, None);
        assert!(!records[0].last_hop_is_eui64());
    }

    #[test]
    fn tracing_is_deterministic() {
        let engine = engine();
        let pool = engine.pools()[3].config.prefix;
        let targets = TargetGenerator::new(2).one_per_subnet(&pool, 56);
        let tracer = Tracer::default();
        let a = tracer.trace_all(&engine, &targets, SimTime::at(1, 10));
        let b = tracer.trace_all(&engine, &targets, SimTime::at(1, 10));
        assert_eq!(a, b);
    }
}

//! The zmap6-style scanner and multi-day campaign scheduler.
//!
//! The scanner visits a target list in the pseudo-random order given by a
//! [`RandomPermutation`] of the scan seed, paces probes at a configurable
//! packets-per-second budget against the virtual clock, and records every
//! `<target, response>` pair. Re-running a scan with the same seed probes the
//! same targets in the same order at the same relative times — the property
//! the paper relies on for its 44 daily snapshots (§5).

use serde::{Deserialize, Serialize};

use scent_simnet::{SimDuration, SimTime};

use crate::permutation::RandomPermutation;
use crate::rate::ProbePacer;
use crate::records::{ProbeRecord, ResponseRecord, Scan};
use crate::ProbeTransport;

/// Scanner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScannerConfig {
    /// Probe rate in packets per second (the paper uses 10,000).
    pub packets_per_second: u64,
    /// Seed controlling probe order; reusing the seed reproduces the order.
    pub seed: u64,
    /// Whether to randomize probe order (zmap behaviour). Disabling this
    /// probes targets in list order, which is occasionally useful in tests
    /// and in the ordering ablation bench.
    pub randomize_order: bool,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            packets_per_second: 10_000,
            seed: 0x5eed,
            randomize_order: true,
        }
    }
}

/// The zmap6-style scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scanner {
    config: ScannerConfig,
}

impl Scanner {
    /// Create a scanner with the given configuration.
    pub fn new(config: ScannerConfig) -> Self {
        Scanner { config }
    }

    /// Create a scanner probing at the paper's 10 kpps with the given seed.
    pub fn at_paper_rate(seed: u64) -> Self {
        Scanner::new(ScannerConfig {
            seed,
            ..ScannerConfig::default()
        })
    }

    /// The scanner's configuration.
    pub fn config(&self) -> &ScannerConfig {
        &self.config
    }

    /// Scan `targets` starting at `start`, returning one record per target.
    ///
    /// Records are returned in probing order (the permuted order), so the
    /// same scan re-run later yields records whose targets line up
    /// one-to-one — which is how the rotation-detection step (§4.3) compares
    /// two snapshots taken 24 hours apart.
    pub fn scan<T: ProbeTransport + ?Sized>(
        &self,
        transport: &T,
        targets: &[std::net::Ipv6Addr],
        start: SimTime,
    ) -> Scan {
        let pacer = ProbePacer::new(start, self.config.packets_per_second);
        let order = RandomPermutation::scan_order(
            targets.len() as u64,
            self.config.seed,
            self.config.randomize_order,
        );
        let mut records = Vec::with_capacity(targets.len());
        for (sent_index, &target_index) in order.iter().enumerate() {
            let target = targets[target_index as usize];
            let sent_at = pacer.send_time(sent_index as u64);
            let response = transport
                .probe(target, sent_at)
                .map(|reply| ResponseRecord {
                    source: reply.source,
                    kind: reply.kind,
                });
            records.push(ProbeRecord {
                target,
                sent_at,
                response,
            });
        }
        let finished_at = pacer.finish_time(targets.len() as u64);
        Scan {
            records,
            started_at: start,
            finished_at,
        }
    }
}

/// A multi-day campaign: the same target list scanned once per period (24
/// hours in the paper), always in the same order, always starting at the same
/// hour.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Campaign {
    /// One scan per campaign day, in chronological order.
    pub scans: Vec<Scan>,
}

impl Campaign {
    /// Run a daily campaign: `days` scans of `targets`, the first starting at
    /// `first_start` and each subsequent scan exactly `interval` later.
    pub fn run<T: ProbeTransport + ?Sized>(
        scanner: &Scanner,
        transport: &T,
        targets: &[std::net::Ipv6Addr],
        first_start: SimTime,
        days: u64,
        interval: SimDuration,
    ) -> Self {
        let mut scans = Vec::with_capacity(days as usize);
        for day in 0..days {
            let start = first_start + SimDuration::from_secs(interval.as_secs() * day);
            scans.push(scanner.scan(transport, targets, start));
        }
        Campaign { scans }
    }

    /// Run the canonical daily campaign (24-hour interval).
    pub fn daily<T: ProbeTransport + ?Sized>(
        scanner: &Scanner,
        transport: &T,
        targets: &[std::net::Ipv6Addr],
        first_start: SimTime,
        days: u64,
    ) -> Self {
        Self::run(
            scanner,
            transport,
            targets,
            first_start,
            days,
            SimDuration::from_days(1),
        )
    }

    /// Number of scans in the campaign.
    pub fn len(&self) -> usize {
        self.scans.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.scans.is_empty()
    }

    /// Total probes sent across all scans.
    pub fn total_probes(&self) -> usize {
        self.scans.iter().map(|s| s.probes_sent()).sum()
    }

    /// Total responses received across all scans.
    pub fn total_responses(&self) -> usize {
        self.scans.iter().map(|s| s.responses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::TargetGenerator;
    use scent_ipv6::Ipv6Prefix;
    use scent_simnet::{scenarios, Engine};

    fn engine() -> Engine {
        Engine::build(scenarios::entel_like(5)).unwrap()
    }

    fn pool_prefix(engine: &Engine) -> Ipv6Prefix {
        engine.pools()[0].config.prefix
    }

    #[test]
    fn scan_produces_one_record_per_target_and_finds_cpe() {
        let engine = engine();
        let targets = TargetGenerator::new(1).one_per_subnet(&pool_prefix(&engine), 56);
        let scanner = Scanner::at_paper_rate(7);
        let scan = scanner.scan(&engine, &targets, SimTime::at(1, 9));
        assert_eq!(scan.probes_sent(), 256);
        // Entel-like: 85% occupancy, 92% responsive — most probes answer.
        assert!(scan.responses() > 150, "responses={}", scan.responses());
        assert!(scan.eui64_responses() > 100);
        assert!(scan.finished_at > scan.started_at);
    }

    #[test]
    fn scan_order_is_permuted_but_reproducible() {
        let engine = engine();
        let targets = TargetGenerator::new(1).one_per_subnet(&pool_prefix(&engine), 56);
        let scanner = Scanner::at_paper_rate(7);
        let a = scanner.scan(&engine, &targets, SimTime::at(1, 9));
        let b = scanner.scan(&engine, &targets, SimTime::at(1, 9));
        assert_eq!(a, b, "same seed, same start: identical scan");
        let probed_order: Vec<_> = a.records.iter().map(|r| r.target).collect();
        assert_ne!(probed_order, targets, "order should be permuted");
        // A different seed probes in a different order but the same set.
        let c = Scanner::at_paper_rate(8).scan(&engine, &targets, SimTime::at(1, 9));
        let mut a_sorted: Vec<_> = probed_order.clone();
        a_sorted.sort();
        let mut c_sorted: Vec<_> = c.records.iter().map(|r| r.target).collect();
        c_sorted.sort();
        assert_eq!(a_sorted, c_sorted);
        assert_ne!(
            probed_order,
            c.records.iter().map(|r| r.target).collect::<Vec<_>>()
        );
    }

    #[test]
    fn in_order_scanning_can_be_requested() {
        let engine = engine();
        let targets = TargetGenerator::new(1).one_per_subnet(&pool_prefix(&engine), 60);
        let scanner = Scanner::new(ScannerConfig {
            randomize_order: false,
            ..ScannerConfig::default()
        });
        let scan = scanner.scan(&engine, &targets, SimTime::at(1, 9));
        let probed: Vec<_> = scan.records.iter().map(|r| r.target).collect();
        assert_eq!(probed, targets);
    }

    #[test]
    fn pacing_matches_rate() {
        let engine = engine();
        let targets = TargetGenerator::new(1).one_per_subnet(&pool_prefix(&engine), 56);
        let scanner = Scanner::new(ScannerConfig {
            packets_per_second: 100,
            seed: 1,
            randomize_order: true,
        });
        let scan = scanner.scan(&engine, &targets, SimTime::at(1, 0));
        // 256 targets at 100 pps: finishes ceil(256/100) = 3 seconds later.
        assert_eq!(
            scan.finished_at,
            SimTime::at(1, 0) + scent_simnet::SimDuration::from_secs(3)
        );
        // Send times are non-decreasing and within the window.
        for pair in scan.records.windows(2) {
            assert!(pair[0].sent_at <= pair[1].sent_at);
        }
    }

    #[test]
    fn daily_campaign_runs_every_day_at_same_hour() {
        let engine = engine();
        let targets = TargetGenerator::new(1).one_per_subnet(&pool_prefix(&engine), 56);
        let scanner = Scanner::at_paper_rate(3);
        let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(10, 6), 5);
        assert_eq!(campaign.len(), 5);
        assert!(!campaign.is_empty());
        assert_eq!(campaign.total_probes(), 5 * 256);
        assert!(campaign.total_responses() > 0);
        for (day, scan) in campaign.scans.iter().enumerate() {
            assert_eq!(scan.started_at, SimTime::at(10 + day as u64, 6));
            // Same order every day: targets line up across scans.
            assert_eq!(scan.records[0].target, campaign.scans[0].records[0].target);
        }
    }
}

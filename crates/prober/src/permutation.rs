//! Full-cycle pseudo-random permutations of a target list.
//!
//! zmap scans the address space in a random order without keeping per-target
//! state by iterating a cyclic group element; the order is a pure function of
//! the scan seed, so a re-run with the same seed visits targets in the same
//! order. We reproduce the same property with an affine permutation over the
//! next power of two combined with cycle-walking: indices that fall outside
//! the target count are simply skipped. This visits every index in `0..n`
//! exactly once, in an order that looks random but is fully determined by the
//! seed.

use scent_simnet::det::{hash2, splitmix64};

/// A deterministic pseudo-random permutation of `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPermutation {
    n: u64,
    /// Power-of-two domain the affine map is defined over.
    domain: u64,
    mul: u64,
    add: u64,
}

impl RandomPermutation {
    /// The probing order of a scan over `n` targets: the seeded permutation
    /// when `randomize` is set, list order otherwise.
    ///
    /// Every scanner-shaped component (the batch [`Scanner`], the streamed
    /// scan replay, the continuous target stream) derives its order through
    /// this one function — the streamed/batch bit-equivalence guarantee
    /// depends on them never diverging.
    ///
    /// [`Scanner`]: crate::zmap6::Scanner
    pub fn scan_order(n: u64, seed: u64, randomize: bool) -> Vec<u64> {
        if randomize {
            RandomPermutation::new(n, seed).iter().collect()
        } else {
            (0..n).collect()
        }
    }

    /// Create a permutation of `0..n` determined by `seed`. `n` may be zero
    /// (the permutation is then empty).
    pub fn new(n: u64, seed: u64) -> Self {
        let domain = n.max(1).next_power_of_two();
        // Any odd multiplier is a bijection modulo a power of two. Mix the
        // seed twice so `mul` and `add` are independent.
        let mul = (hash2(seed, 0x7065_726d, domain) | 1) & (domain - 1).max(1);
        let add = hash2(seed, 0x0061_6464, domain) & (domain - 1);
        RandomPermutation {
            n,
            domain,
            mul: if mul == 0 { 1 } else { mul },
            add,
        }
    }

    /// Number of elements in the permutation.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The image of domain element `x` under the affine map (before cycle
    /// walking).
    fn map(&self, x: u64) -> u64 {
        (x.wrapping_mul(self.mul).wrapping_add(self.add)) & (self.domain - 1)
    }

    /// Iterate the permuted indices.
    pub fn iter(&self) -> PermutationIter {
        PermutationIter {
            perm: *self,
            next_domain: 0,
            emitted: 0,
        }
    }
}

/// Iterator over a [`RandomPermutation`].
#[derive(Debug, Clone)]
pub struct PermutationIter {
    perm: RandomPermutation,
    next_domain: u64,
    emitted: u64,
}

impl Iterator for PermutationIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.emitted < self.perm.n && self.next_domain < self.perm.domain {
            let candidate = self.perm.map(self.next_domain);
            self.next_domain += 1;
            if candidate < self.perm.n {
                self.emitted += 1;
                return Some(candidate);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.perm.n - self.emitted) as usize;
        (remaining, Some(remaining))
    }
}

/// Shuffle a slice in place according to a seeded Fisher–Yates pass. Used
/// where a materialised order is preferable to the streaming permutation
/// (e.g. small traceroute target lists); compared against
/// [`RandomPermutation`] in the `permutation` ablation bench.
pub fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = splitmix64(seed);
    for i in (1..items.len()).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn visits_every_index_exactly_once() {
        for n in [0u64, 1, 2, 7, 64, 1000, 4096] {
            let perm = RandomPermutation::new(n, 42);
            let seen: Vec<u64> = perm.iter().collect();
            assert_eq!(seen.len() as u64, n, "n={n}");
            let unique: HashSet<u64> = seen.iter().copied().collect();
            assert_eq!(unique.len() as u64, n, "n={n}");
            assert!(seen.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn same_seed_same_order_different_seed_different_order() {
        let a: Vec<u64> = RandomPermutation::new(1000, 7).iter().collect();
        let b: Vec<u64> = RandomPermutation::new(1000, 7).iter().collect();
        let c: Vec<u64> = RandomPermutation::new(1000, 8).iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn order_is_not_identity() {
        let order: Vec<u64> = RandomPermutation::new(4096, 1).iter().collect();
        let identity: Vec<u64> = (0..4096).collect();
        assert_ne!(order, identity);
        // ...and is reasonably well mixed: the first few elements should not
        // all be tiny.
        assert!(order.iter().take(8).any(|&v| v > 256));
    }

    #[test]
    fn size_hint_is_exact() {
        let perm = RandomPermutation::new(100, 3);
        let mut iter = perm.iter();
        assert_eq!(iter.size_hint(), (100, Some(100)));
        iter.next();
        assert_eq!(iter.size_hint(), (99, Some(99)));
        assert!(!perm.is_empty());
        assert_eq!(perm.len(), 100);
        assert!(RandomPermutation::new(0, 3).is_empty());
    }

    #[test]
    fn seeded_shuffle_is_deterministic_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        seeded_shuffle(&mut a, 99);
        seeded_shuffle(&mut b, 99);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..100).collect();
        seeded_shuffle(&mut c, 100);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn permutation_is_bijective(n in 1u64..5000, seed in any::<u64>()) {
            let perm = RandomPermutation::new(n, seed);
            let seen: HashSet<u64> = perm.iter().collect();
            prop_assert_eq!(seen.len() as u64, n);
        }
    }
}

//! Probe and scan result records.
//!
//! A [`Scan`] is the unit every analysis in `scent-core` consumes: the list
//! of `<target, response>` pairs from one pass over a target list, with the
//! virtual time each probe was sent. The paper's Algorithms 1 and 2 are
//! defined directly over these pairs.

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use scent_ipv6::Eui64;
use scent_simnet::{Asn, ReplyKind, SimTime};

/// The response half of a probe record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseRecord {
    /// Source address of the ICMPv6 response (the CPE WAN address when the
    /// probe landed inside a delegated prefix).
    pub source: Ipv6Addr,
    /// The ICMPv6 message kind received.
    pub kind: ReplyKind,
}

impl ResponseRecord {
    /// Whether the response source carries an EUI-64 interface identifier.
    pub fn is_eui64(&self) -> bool {
        Eui64::addr_is_eui64(self.source)
    }

    /// The EUI-64 identifier embedded in the response source, if any.
    pub fn eui64(&self) -> Option<Eui64> {
        Eui64::from_addr(self.source)
    }
}

/// One probe and its outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// The probed target address.
    pub target: Ipv6Addr,
    /// Virtual time the probe was sent.
    pub sent_at: SimTime,
    /// The response, or `None` if the probe went unanswered.
    pub response: Option<ResponseRecord>,
}

impl ProbeRecord {
    /// Whether the probe received any response.
    pub fn responded(&self) -> bool {
        self.response.is_some()
    }

    /// The response source address, if any.
    pub fn source(&self) -> Option<Ipv6Addr> {
        self.response.map(|r| r.source)
    }

    /// The EUI-64 identifier in the response, if any.
    pub fn eui64(&self) -> Option<Eui64> {
        self.response.and_then(|r| r.eui64())
    }
}

/// The result of one scan over a target list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scan {
    /// One record per probed target, in probing order.
    pub records: Vec<ProbeRecord>,
    /// Time the scan began.
    pub started_at: SimTime,
    /// Time the last probe was sent.
    pub finished_at: SimTime,
}

impl Scan {
    /// Number of probes sent.
    pub fn probes_sent(&self) -> usize {
        self.records.len()
    }

    /// Number of probes that received a response.
    pub fn responses(&self) -> usize {
        self.records.iter().filter(|r| r.responded()).count()
    }

    /// Number of responses whose source carried an EUI-64 IID.
    pub fn eui64_responses(&self) -> usize {
        self.records.iter().filter(|r| r.eui64().is_some()).count()
    }

    /// Iterate over the `<target, response source>` pairs of responsive
    /// probes.
    pub fn responsive_pairs(&self) -> impl Iterator<Item = (Ipv6Addr, Ipv6Addr)> + '_ {
        self.records
            .iter()
            .filter_map(|r| r.source().map(|s| (r.target, s)))
    }

    /// Iterate over the `<target, EUI-64 source>` pairs.
    pub fn eui64_pairs(&self) -> impl Iterator<Item = (Ipv6Addr, Ipv6Addr, Eui64)> + '_ {
        self.records.iter().filter_map(|r| {
            r.eui64()
                .map(|eui| (r.target, r.source().expect("eui64 implies response"), eui))
        })
    }

    /// The distinct EUI-64 identifiers observed in this scan.
    pub fn distinct_eui64(&self) -> std::collections::HashSet<Eui64> {
        self.records.iter().filter_map(|r| r.eui64()).collect()
    }
}

/// A scan annotated with the AS each response mapped to (via the RIB), used
/// by per-AS analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsAnnotated {
    /// The probed target.
    pub target: Ipv6Addr,
    /// The responding address.
    pub source: Ipv6Addr,
    /// The origin AS of the responding address.
    pub asn: Asn,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_ipv6::wire::DestUnreachableCode;
    use scent_ipv6::MacAddr;
    use scent_simnet::ReplyKind;

    fn eui_source() -> Ipv6Addr {
        let mac: MacAddr = "c8:0e:14:01:02:03".parse().unwrap();
        Eui64::from_mac(mac).with_prefix64(0x2001_0db8_0000_0042)
    }

    fn record(target: &str, source: Option<Ipv6Addr>) -> ProbeRecord {
        ProbeRecord {
            target: target.parse().unwrap(),
            sent_at: SimTime::at(1, 0),
            response: source.map(|s| ResponseRecord {
                source: s,
                kind: ReplyKind::DestinationUnreachable(DestUnreachableCode::AddressUnreachable),
            }),
        }
    }

    #[test]
    fn record_accessors() {
        let hit = record("2001:db8:0:42::1234", Some(eui_source()));
        assert!(hit.responded());
        assert!(hit.eui64().is_some());
        assert_eq!(hit.source(), Some(eui_source()));
        let miss = record("2001:db8::1", None);
        assert!(!miss.responded());
        assert!(miss.eui64().is_none());
        let non_eui = record("2001:db8::2", Some("2001:db8::beef".parse().unwrap()));
        assert!(non_eui.responded());
        assert!(non_eui.eui64().is_none());
        assert!(!non_eui.response.unwrap().is_eui64());
    }

    #[test]
    fn scan_statistics() {
        let scan = Scan {
            records: vec![
                record("2001:db8:0:1::1", Some(eui_source())),
                record("2001:db8:0:2::1", None),
                record("2001:db8:0:3::1", Some("2001:db8::beef".parse().unwrap())),
                record("2001:db8:0:4::1", Some(eui_source())),
            ],
            started_at: SimTime::at(1, 0),
            finished_at: SimTime::at(1, 1),
        };
        assert_eq!(scan.probes_sent(), 4);
        assert_eq!(scan.responses(), 3);
        assert_eq!(scan.eui64_responses(), 2);
        assert_eq!(scan.responsive_pairs().count(), 3);
        assert_eq!(scan.eui64_pairs().count(), 2);
        // The same device answered twice, so only one distinct IID.
        assert_eq!(scan.distinct_eui64().len(), 1);
    }
}

//! The seed traceroute campaign.
//!
//! The paper bootstraps its target selection from the CAIDA IPv6 Routed /48
//! Topology dataset: a traceroute to one target in every /48 of every
//! announced prefix /32 or smaller, collected more than a year before the
//! main measurements (§4). The seed's only role is to nominate /48 networks
//! whose *last responsive hop* carries an EUI-64 interface identifier.
//!
//! [`SeedCampaign::run`] reproduces that bootstrap against any measurement
//! backend ([`ProbeTransport`] + [`WorldView`]): it enumerates the /48s of
//! every prefix announced in the backend's RIB, traceroutes one
//! pseudo-random target in each, and records the last responsive hop.
//! Running it at an earlier [`SimTime`] than the main campaign reproduces the
//! staleness of the real seed data (devices have churned and prefixes have
//! rotated in the meantime), which is why the paper's §4.1 re-validates every
//! seed before using it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use scent_ipv6::{Eui64, Ipv6Prefix};
use scent_simnet::det::hash2;
use scent_simnet::SimTime;

use crate::{ProbeTransport, WorldView};

/// One seed observation: the /48 probed and the last responsive hop seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedEntry {
    /// The /48 network the traceroute target was drawn from.
    pub target_48: Ipv6Prefix,
    /// The last responsive hop on the path toward the target.
    pub last_hop: std::net::Ipv6Addr,
}

impl SeedEntry {
    /// Whether the last hop carries an EUI-64 interface identifier.
    pub fn is_eui64(&self) -> bool {
        Eui64::addr_is_eui64(self.last_hop)
    }
}

/// The result of a seed traceroute campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedCampaign {
    /// All /48s that produced a responsive last hop.
    pub entries: Vec<SeedEntry>,
    /// Number of /48s probed (responsive or not).
    pub probed_48s: u64,
    /// The virtual time at which the campaign ran.
    pub collected_at: SimTime,
}

impl SeedCampaign {
    /// Run the seed campaign at time `t` against any backend.
    ///
    /// Every prefix announced in the backend's RIB is decomposed into /48s
    /// (prefixes longer than /48 are skipped); at most `max_48s_per_prefix`
    /// are probed per announcement, which bounds the cost for very large
    /// announcements. One deterministic pseudo-random target per /48 —
    /// keyed on the backend's world seed — is traced.
    ///
    /// Like a real routing table, the RIB holds each prefix once: if two
    /// providers were configured to announce the same prefix, it is probed
    /// once (under the surviving origin), not once per announcement.
    pub fn run<B: ProbeTransport + WorldView + ?Sized>(
        backend: &B,
        t: SimTime,
        max_48s_per_prefix: u64,
    ) -> Self {
        let seed = backend.world_seed();
        let mut entries = Vec::new();
        let mut probed = 0u64;
        for announced in backend.rib().entries() {
            let announced = announced.prefix;
            if announced.len() > 48 {
                continue;
            }
            let total = announced
                .num_subnets(48)
                .expect("48 not shorter than announcement");
            let count = total.min(max_48s_per_prefix as u128);
            for i in 0..count {
                let sub48 = announced.nth_subnet(48, i).expect("index bounded by count");
                probed += 1;
                // A pseudo-random /64 and IID inside the /48, fixed per /48 so
                // re-running the campaign is reproducible.
                let h = hash2(seed, sub48.network_bits() as u64, 0x7365_6564);
                let host_bits = ((h as u128) << 64) | hash2(seed, h, 1) as u128;
                let target = sub48.addr_with_host_bits(host_bits);
                let trace = crate::TraceRecord::from_hops(target, backend.trace(target, t, 32));
                if let Some(last_hop) = trace.last_hop {
                    entries.push(SeedEntry {
                        target_48: sub48,
                        last_hop,
                    });
                }
            }
        }
        SeedCampaign {
            entries,
            probed_48s: probed,
            collected_at: t,
        }
    }

    /// The /48 networks whose last hop carried an EUI-64 IID that was seen in
    /// no other /48 — the "unique responsive EUI-64 last hop" filter the
    /// paper applies to the CAIDA data (§4).
    pub fn unique_eui64_48s(&self) -> Vec<Ipv6Prefix> {
        let mut by_iid: HashMap<u64, Vec<Ipv6Prefix>> = HashMap::new();
        for entry in &self.entries {
            if let Some(eui) = Eui64::from_addr(entry.last_hop) {
                by_iid
                    .entry(eui.as_u64())
                    .or_default()
                    .push(entry.target_48);
            }
        }
        let mut out: Vec<Ipv6Prefix> = by_iid
            .into_values()
            .filter(|v| v.len() == 1)
            .map(|v| v[0])
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The distinct /32 supernets of the unique-EUI-64 /48s: the starting
    /// point of the expansion step (§4.1).
    pub fn seed_32s(&self) -> Vec<Ipv6Prefix> {
        let mut out: Vec<Ipv6Prefix> = self
            .unique_eui64_48s()
            .iter()
            .map(|p| p.supernet(32).expect("48 is longer than 32"))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_simnet::config::{
        ProviderConfig, RotationPolicy, RotationPoolConfig, SlotLayout, WorldConfig,
    };
    use scent_simnet::Engine;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn tiny_world() -> WorldConfig {
        // Announce a /44 (16 /48s) with one /46 pool (4 /48s) populated.
        let provider = ProviderConfig::new(
            64500u32,
            "SeedNet",
            "DE",
            vec![p("2001:db8:a00::/44")],
            vec![RotationPoolConfig {
                prefix: p("2001:db8:a04::/46"),
                allocation_len: 56,
                occupancy: 0.8,
                layout: SlotLayout::Spread,
                rotation: RotationPolicy::Static,
            }],
        );
        let mut world = WorldConfig::new(vec![provider], 11);
        world.churn_fraction = 0.0;
        world
    }

    #[test]
    fn seed_campaign_finds_pool_48s() {
        let engine = Engine::build(tiny_world()).unwrap();
        let seed = SeedCampaign::run(&engine, SimTime::at(1, 12), 65_536);
        assert_eq!(seed.probed_48s, 16);
        // Only /48s covered by the pool can produce CPE last hops.
        let eui_48s = seed.unique_eui64_48s();
        assert!(!eui_48s.is_empty());
        for pfx in &eui_48s {
            assert!(p("2001:db8:a04::/46").contains_prefix(pfx));
        }
        // All of them roll up to the one announced /32... which here is the
        // /32 containing the /44.
        let seeds_32 = seed.seed_32s();
        assert_eq!(seeds_32, vec![p("2001:db8::/32")]);
    }

    #[test]
    fn seed_entries_classify_eui64() {
        let engine = Engine::build(tiny_world()).unwrap();
        let seed = SeedCampaign::run(&engine, SimTime::at(1, 12), 65_536);
        for entry in &seed.entries {
            assert_eq!(entry.is_eui64(), Eui64::addr_is_eui64(entry.last_hop));
        }
    }

    #[test]
    fn max_48s_bound_is_respected() {
        let engine = Engine::build(tiny_world()).unwrap();
        let seed = SeedCampaign::run(&engine, SimTime::at(1, 12), 4);
        assert_eq!(seed.probed_48s, 4);
    }

    #[test]
    fn campaign_is_deterministic_and_backend_agnostic() {
        let engine = Engine::build(tiny_world()).unwrap();
        let a = SeedCampaign::run(&engine, SimTime::at(1, 12), 65_536);
        let b = SeedCampaign::run(&engine, SimTime::at(1, 12), 65_536);
        assert_eq!(a, b);
        // A `&dyn` backend runs the identical campaign.
        let dyn_backend: &dyn crate::MeasurementBackend = &engine;
        let c = SeedCampaign::run(dyn_backend, SimTime::at(1, 12), 65_536);
        assert_eq!(a, c);
    }

    #[test]
    fn privacy_only_world_produces_no_eui64_seeds() {
        let mut world = tiny_world();
        world.providers[0].eui64_fraction = 0.0;
        let engine = Engine::build(world).unwrap();
        let seed = SeedCampaign::run(&engine, SimTime::at(1, 12), 65_536);
        assert!(seed.unique_eui64_48s().is_empty());
        // Responses still exist; they just are not EUI-64.
        assert!(!seed.entries.is_empty());
    }
}

//! Probe pacing against the virtual clock.
//!
//! The paper probes at a deliberately conservative 10k packets per second
//! (§3.1, §7), and several of its cost arguments (e.g. "about 13 seconds at
//! 10 kpps" for a /46 rotation pool of /64s, or the "75 seconds of active
//! probing" for EUI-64 IID #2 in Table 2) are statements about how long a
//! probe budget takes to spend at that rate. [`ProbePacer`] converts probe
//! indices into virtual send times at a fixed rate; [`TokenBucket`] provides
//! the classic bucket abstraction for burst-limited senders and for modelling
//! ICMPv6 error rate limits.

use serde::{Deserialize, Serialize};

use scent_simnet::{SimDuration, SimTime};

/// Deterministic pacing: probe `i` of a scan is sent at
/// `start + i / packets_per_second`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbePacer {
    /// Time the scan starts.
    pub start: SimTime,
    /// Probe budget per second.
    pub packets_per_second: u64,
}

impl ProbePacer {
    /// Create a pacer starting at `start` with the given rate (which must be
    /// non-zero).
    pub fn new(start: SimTime, packets_per_second: u64) -> Self {
        assert!(packets_per_second > 0, "rate must be non-zero");
        ProbePacer {
            start,
            packets_per_second,
        }
    }

    /// The virtual send time of the `index`th probe.
    pub fn send_time(&self, index: u64) -> SimTime {
        self.start + SimDuration::from_secs(index / self.packets_per_second)
    }

    /// The duration needed to send `count` probes at this rate, rounded up to
    /// whole seconds.
    pub fn duration_for(&self, count: u64) -> SimDuration {
        SimDuration::from_secs(count.div_ceil(self.packets_per_second))
    }

    /// The time the scan finishes if it sends `count` probes.
    pub fn finish_time(&self, count: u64) -> SimTime {
        self.start + self.duration_for(count)
    }
}

/// A token bucket: capacity `burst`, refilled at `rate` tokens per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket that starts full.
    pub fn new(rate_per_sec: f64, burst: f64, now: SimTime) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0);
        TokenBucket {
            rate: rate_per_sec,
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// Refill the bucket up to `now` and try to take one token.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.since(self.last).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_spreads_probes_over_time() {
        let pacer = ProbePacer::new(SimTime::at(1, 0), 10_000);
        assert_eq!(pacer.send_time(0), SimTime::at(1, 0));
        assert_eq!(pacer.send_time(9_999), SimTime::at(1, 0));
        assert_eq!(
            pacer.send_time(10_000),
            SimTime::at(1, 0) + SimDuration::from_secs(1)
        );
        // The paper's example: E[2^18 - 1] probes at 10 kpps is ~13 seconds.
        let probes = (1u64 << 18) / 2;
        let duration = pacer.duration_for(probes);
        assert_eq!(duration.as_secs(), 14); // ceil(131072 / 10000)
        assert_eq!(
            pacer.finish_time(probes),
            SimTime::at(1, 0) + SimDuration::from_secs(14)
        );
    }

    #[test]
    #[should_panic(expected = "rate must be non-zero")]
    fn pacer_rejects_zero_rate() {
        ProbePacer::new(SimTime::EPOCH, 0);
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles() {
        let now = SimTime::at(0, 0);
        let mut bucket = TokenBucket::new(2.0, 3.0, now);
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(!bucket.try_take(now), "burst exhausted");
        // One second later two tokens have accrued.
        let later = now + SimDuration::from_secs(1);
        assert!(bucket.try_take(later));
        assert!(bucket.try_take(later));
        assert!(!bucket.try_take(later));
        assert!(bucket.available() < 1.0);
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let now = SimTime::at(0, 0);
        let mut bucket = TokenBucket::new(10.0, 2.0, now);
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        // A long idle period refills only to the burst cap.
        let much_later = now + SimDuration::from_days(1);
        assert!(bucket.try_take(much_later));
        assert!(bucket.try_take(much_later));
        assert!(!bucket.try_take(much_later));
    }
}

//! Probe pacing against the virtual clock.
//!
//! The paper probes at a deliberately conservative 10k packets per second
//! (§3.1, §7), and several of its cost arguments (e.g. "about 13 seconds at
//! 10 kpps" for a /46 rotation pool of /64s, or the "75 seconds of active
//! probing" for EUI-64 IID #2 in Table 2) are statements about how long a
//! probe budget takes to spend at that rate. [`ProbePacer`] converts probe
//! indices into virtual send times at a fixed rate; [`TokenBucket`] provides
//! the classic bucket abstraction for burst-limited senders and for modelling
//! ICMPv6 error rate limits.

use serde::{Deserialize, Serialize};

use scent_simnet::{SimDuration, SimTime};

/// Deterministic pacing: probe `i` of a scan is sent at
/// `start + i / packets_per_second`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbePacer {
    /// Time the scan starts.
    pub start: SimTime,
    /// Probe budget per second.
    pub packets_per_second: u64,
}

impl ProbePacer {
    /// Create a pacer starting at `start` with the given rate (which must be
    /// non-zero).
    pub fn new(start: SimTime, packets_per_second: u64) -> Self {
        assert!(packets_per_second > 0, "rate must be non-zero");
        ProbePacer {
            start,
            packets_per_second,
        }
    }

    /// The virtual send time of the `index`th probe.
    pub fn send_time(&self, index: u64) -> SimTime {
        self.start + SimDuration::from_secs(index / self.packets_per_second)
    }

    /// The duration needed to send `count` probes at this rate, rounded up to
    /// whole seconds.
    pub fn duration_for(&self, count: u64) -> SimDuration {
        SimDuration::from_secs(count.div_ceil(self.packets_per_second))
    }

    /// The time the scan finishes if it sends `count` probes.
    pub fn finish_time(&self, count: u64) -> SimTime {
        self.start + self.duration_for(count)
    }
}

/// A pacer with AIMD rate feedback for continuous streaming scans.
///
/// The batch [`ProbePacer`] computes send times from a fixed rate; a
/// long-running monitor instead has consumers (inference shards) that can
/// fall behind. `FeedbackPacer` keeps a current rate that backs off
/// multiplicatively when the consumer signals backpressure
/// ([`FeedbackPacer::on_backpressure`]) and recovers additively while the
/// stream drains freely ([`FeedbackPacer::on_progress`]) — classic AIMD
/// against the virtual clock, bounded below so the monitor never stalls
/// entirely and above by the configured budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackPacer {
    base_pps: u64,
    current_pps: u64,
    min_pps: u64,
    cursor: SimTime,
    sent_in_second: u64,
}

impl FeedbackPacer {
    /// Create a pacer starting at `start` with a non-zero probe budget.
    pub fn new(start: SimTime, packets_per_second: u64) -> Self {
        assert!(packets_per_second > 0, "rate must be non-zero");
        FeedbackPacer {
            base_pps: packets_per_second,
            current_pps: packets_per_second,
            min_pps: (packets_per_second / 64).max(1),
            cursor: start,
            sent_in_second: 0,
        }
    }

    /// The send time of the next probe at the current rate.
    pub fn next_send_time(&mut self) -> SimTime {
        if self.sent_in_second >= self.current_pps {
            self.cursor += SimDuration::from_secs(1);
            self.sent_in_second = 0;
        }
        self.sent_in_second += 1;
        self.cursor
    }

    /// Advance the pacer as if `count` probes had been sent, without sending
    /// them. Exactly equivalent to calling [`FeedbackPacer::next_send_time`]
    /// `count` times (at the current rate) in O(1) — this is what lets a
    /// sharded producer that owns only a slice of a scan pass keep its pacer
    /// state bit-identical to the single-producer pacer that paces every
    /// position.
    pub fn skip(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        let total = self.sent_in_second + count;
        self.cursor += SimDuration::from_secs((total - 1) / self.current_pps);
        self.sent_in_second = (total - 1) % self.current_pps + 1;
    }

    /// Multiplicative back-off: the consumer could not keep up.
    pub fn on_backpressure(&mut self) {
        self.current_pps = (self.current_pps / 2).max(self.min_pps);
    }

    /// Additive recovery: the stream is draining freely.
    pub fn on_progress(&mut self) {
        let step = (self.base_pps / 16).max(1);
        self.current_pps = (self.current_pps + step).min(self.base_pps);
    }

    /// The current effective rate.
    pub fn rate(&self) -> u64 {
        self.current_pps
    }

    /// The configured (maximum) rate.
    pub fn base_rate(&self) -> u64 {
        self.base_pps
    }

    /// Advance to a window boundary: the next probe is sent no earlier than
    /// `start` (virtual time never runs backwards).
    pub fn advance_to(&mut self, start: SimTime) {
        if start > self.cursor {
            self.cursor = start;
            self.sent_in_second = 0;
        }
    }

    /// The virtual time the pacer has reached.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// The pacer's complete internal state, in declaration order — what a
    /// checkpoint encodes: `(base_pps, current_pps, min_pps, cursor,
    /// sent_in_second)`.
    pub fn checkpoint_parts(&self) -> (u64, u64, u64, SimTime, u64) {
        (
            self.base_pps,
            self.current_pps,
            self.min_pps,
            self.cursor,
            self.sent_in_second,
        )
    }

    /// Rebuild a pacer from [`FeedbackPacer::checkpoint_parts`].
    pub fn from_checkpoint_parts(parts: (u64, u64, u64, SimTime, u64)) -> Self {
        let (base_pps, current_pps, min_pps, cursor, sent_in_second) = parts;
        FeedbackPacer {
            base_pps,
            current_pps,
            min_pps,
            cursor,
            sent_in_second,
        }
    }
}

/// Configuration of the deterministic virtual-queue feedback model.
///
/// The model replaces wall-clock backpressure (OS channel rendezvous) with a
/// *virtual* queue per inference shard: every observation enqueues one unit
/// on its shard's counter, and a configurable [`QueueModel::drain_rate`]
/// retires units per virtual second. The resulting depth is a pure function
/// of `(config, target order, virtual time)` — no thread scheduling, no
/// channel state — which is what lets every producer of a sharded scan
/// replay the same global rate trajectory locally and keep the merged stream
/// bit-identical to the single-producer run with feedback **on**.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueModel {
    /// Observations each shard retires per virtual second. `None` models an
    /// infinitely fast consumer: depths are always zero and the pacer
    /// reproduces the feedback-off trajectory exactly.
    pub drain_rate: Option<u64>,
    /// Depth at or above which a feedback instant backs off
    /// (multiplicative).
    pub high_watermark: u64,
    /// Depth at or below which a feedback instant recovers (additive). Must
    /// be strictly below [`QueueModel::high_watermark`].
    pub low_watermark: u64,
    /// Per-shard drain-rate overrides (e.g. calibrated from the
    /// `shard_ingest` measurements): shard `i` drains at
    /// `per_shard_drain[i]` observations per virtual second; shards past the
    /// end of the vector fall back to [`QueueModel::drain_rate`]. Empty
    /// means every shard drains uniformly.
    pub per_shard_drain: Vec<u64>,
}

impl QueueModel {
    /// An infinitely fast consumer: depths stay zero, the rate stays at the
    /// configured budget — today's feedback-off trajectory, exactly.
    pub fn unbounded() -> Self {
        QueueModel {
            drain_rate: None,
            high_watermark: 1024,
            low_watermark: 128,
            per_shard_drain: Vec::new(),
        }
    }

    /// A consumer retiring `drain_rate` observations per shard per virtual
    /// second, with the default watermarks.
    pub fn with_drain_rate(drain_rate: u64) -> Self {
        QueueModel {
            drain_rate: Some(drain_rate),
            ..Self::unbounded()
        }
    }

    /// A consumer whose shards drain at individually measured rates (e.g.
    /// loaded from the `shard_ingest` calibration artifact), with the
    /// default watermarks. Shard `i` drains at the `i`th rate; shards beyond
    /// the list fall back to an infinitely fast drain (no rate configured),
    /// so pass one rate per shard.
    pub fn per_shard_drain<I: IntoIterator<Item = u64>>(rates: I) -> Self {
        QueueModel {
            per_shard_drain: rates.into_iter().collect(),
            ..Self::unbounded()
        }
    }

    /// [`QueueModel::per_shard_drain`] built straight from a calibration
    /// measurement: `ns_per_obs[i]` is shard `i`'s measured ingest cost in
    /// nanoseconds per observation (the `shard_ingest` bench artifact), and
    /// the drain rate becomes the observations that shard retires per
    /// virtual second (`1e9 / ns`, floored, clamped to at least 1 so a
    /// pathological measurement can never model a stuck consumer; a zero
    /// measurement is treated as 1 ns). Default watermarks.
    ///
    /// The mapping itself is pure arithmetic, so feeding wall-clock
    /// calibration numbers in keeps the resulting AIMD trajectory a
    /// deterministic function of the *model* — runs stay byte-identical
    /// across producer counts for any calibration input.
    pub fn calibrated<I: IntoIterator<Item = u64>>(ns_per_obs: I) -> Self {
        Self::per_shard_drain(
            ns_per_obs
                .into_iter()
                .map(|ns| (1_000_000_000 / ns.max(1)).max(1)),
        )
    }

    /// The drain rate in force for `shard`: its per-shard override if one is
    /// configured, otherwise the uniform [`QueueModel::drain_rate`].
    pub fn drain_for(&self, shard: usize) -> Option<u64> {
        self.per_shard_drain.get(shard).copied().or(self.drain_rate)
    }

    /// Whether the watermarks are ordered sensibly (`low < high`).
    pub fn is_valid(&self) -> bool {
        self.low_watermark < self.high_watermark
    }
}

impl Default for QueueModel {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// A deterministic per-shard queue-depth counter: observations enqueued
/// minus observations a drain rate would have retired by a given virtual
/// instant.
///
/// The counter is *virtual*: it never inspects a real channel. Draining is
/// computed, not tracked — `depth_at(t)` subtracts `drain_rate × (t − epoch)`
/// from the enqueue count (saturating at zero), so the depth at any instant
/// is a pure function of how many observations were routed to the shard and
/// how much virtual time has passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualQueue {
    enqueued: u64,
    epoch: SimTime,
}

impl VirtualQueue {
    /// An empty queue whose drain clock starts at `epoch`.
    pub fn new(epoch: SimTime) -> Self {
        VirtualQueue { enqueued: 0, epoch }
    }

    /// Account one observation routed to this shard.
    pub fn enqueue(&mut self) {
        self.enqueued += 1;
    }

    /// Observations enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// The queue depth at virtual time `now` under `drain_rate`
    /// (observations retired per virtual second; `None` = infinitely fast).
    pub fn depth_at(&self, now: SimTime, drain_rate: Option<u64>) -> u64 {
        let Some(rate) = drain_rate else { return 0 };
        let retired = now.since(self.epoch).as_secs().saturating_mul(rate);
        self.enqueued.saturating_sub(retired)
    }

    /// The queue's complete internal state — what a checkpoint encodes:
    /// `(enqueued, epoch)`.
    pub fn checkpoint_parts(&self) -> (u64, SimTime) {
        (self.enqueued, self.epoch)
    }

    /// Rebuild a queue from [`VirtualQueue::checkpoint_parts`].
    pub fn from_checkpoint_parts(parts: (u64, SimTime)) -> Self {
        let (enqueued, epoch) = parts;
        VirtualQueue { enqueued, epoch }
    }
}

/// A [`FeedbackPacer`] driven by the deterministic virtual-queue model
/// instead of OS channel pressure.
///
/// Every probing-order position — owned or foreign — is accounted through
/// [`QueuePacer::pace`] / [`QueuePacer::skip`], which perform the *identical*
/// state transition (the only difference is whether the caller sends a
/// probe). Feedback is evaluated at well-defined virtual instants: each time
/// the pacer's cursor rolls over to a new second, the maximum shard depth at
/// that instant decides between [`FeedbackPacer::on_backpressure`] (depth ≥
/// high watermark) and [`FeedbackPacer::on_progress`] (depth ≤ low
/// watermark). Because all of that is a pure function of the position
/// sequence and virtual time, P producers that each account all positions
/// (probing only their own strided slice) hold bit-identical pacer states at
/// every position — the property that makes AIMD feedback compatible with
/// sharded producers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuePacer {
    pacer: FeedbackPacer,
    model: QueueModel,
    queues: Vec<VirtualQueue>,
}

impl QueuePacer {
    /// Create a pacer over `shards` virtual queues, starting at `start` with
    /// a non-zero probe budget.
    pub fn new(start: SimTime, packets_per_second: u64, shards: usize, model: QueueModel) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(model.is_valid(), "low watermark must be below high");
        QueuePacer {
            pacer: FeedbackPacer::new(start, packets_per_second),
            model,
            queues: vec![VirtualQueue::new(start); shards],
        }
    }

    /// Account one observation routed to `shard` and return its virtual send
    /// time at the current (feedback-adjusted) rate.
    pub fn pace(&mut self, shard: usize) -> SimTime {
        if self.pacer.sent_in_second >= self.pacer.current_pps {
            self.pacer.cursor += SimDuration::from_secs(1);
            self.pacer.sent_in_second = 0;
            // The well-defined virtual instant: a new send second begins.
            self.evaluate();
        }
        self.pacer.sent_in_second += 1;
        self.queues[shard].enqueue();
        self.pacer.cursor
    }

    /// [`QueuePacer::pace`], additionally reporting the AIMD rate transition
    /// the position triggered, if any. This is the telemetry hook point:
    /// because the trajectory is a pure function of the position sequence,
    /// an observer fed from a merge-side replica pacer sees the exact
    /// back-off/recovery events every producer replayed locally — in
    /// deterministic order, at their virtual instants.
    pub fn pace_tracked(&mut self, shard: usize) -> (SimTime, Option<RateTransition>) {
        let from_pps = self.rate();
        let sent_at = self.pace(shard);
        let to_pps = self.rate();
        let transition = (from_pps != to_pps).then_some(RateTransition { from_pps, to_pps });
        (sent_at, transition)
    }

    /// Fast-forward over one *foreign* position routed to `shard`: the exact
    /// state transition of [`QueuePacer::pace`] — enqueue accounting, second
    /// rollovers and the multiplicative/additive rate events they trigger —
    /// without the caller sending the probe. This is skip-with-feedback: a
    /// producer that owns only a strided slice of the scan calls it for every
    /// position another producer probes, so its pacer replays the global rate
    /// trajectory locally.
    pub fn skip(&mut self, shard: usize) {
        let _ = self.pace(shard);
    }

    /// Evaluate the feedback signal at the current cursor instant.
    fn evaluate(&mut self) {
        let depth = self.depth();
        if depth >= self.model.high_watermark {
            self.pacer.on_backpressure();
        } else if depth <= self.model.low_watermark {
            self.pacer.on_progress();
        }
    }

    /// The maximum shard depth at the pacer's current virtual instant. Each
    /// shard drains at [`QueueModel::drain_for`] its index, so asymmetric
    /// per-shard calibrations feed back through the slowest shard.
    pub fn depth(&self) -> u64 {
        let now = self.pacer.cursor;
        self.queues
            .iter()
            .enumerate()
            .map(|(i, q)| q.depth_at(now, self.model.drain_for(i)))
            .max()
            .unwrap_or(0)
    }

    /// The depth of one shard's queue at the current virtual instant.
    pub fn shard_depth(&self, shard: usize) -> u64 {
        self.queues[shard].depth_at(self.pacer.cursor, self.model.drain_for(shard))
    }

    /// Number of virtual queues (shards).
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The current effective rate.
    pub fn rate(&self) -> u64 {
        self.pacer.rate()
    }

    /// The configured (maximum) rate.
    pub fn base_rate(&self) -> u64 {
        self.pacer.base_rate()
    }

    /// The queue model in force.
    pub fn model(&self) -> &QueueModel {
        &self.model
    }

    /// Advance to a window boundary: the next probe is sent no earlier than
    /// `start` (virtual time never runs backwards). No feedback is evaluated
    /// here — rate events fire only at send-second rollovers, which keeps
    /// the instants identical for every producer regardless of where its
    /// slice boundaries fall.
    pub fn advance_to(&mut self, start: SimTime) {
        self.pacer.advance_to(start);
    }

    /// The virtual time the pacer has reached.
    pub fn now(&self) -> SimTime {
        self.pacer.now()
    }

    /// The pacer's complete internal state — what a checkpoint encodes:
    /// the inner [`FeedbackPacer`], the [`QueueModel`] and the per-shard
    /// [`VirtualQueue`]s.
    pub fn checkpoint_parts(&self) -> (&FeedbackPacer, &QueueModel, &[VirtualQueue]) {
        (&self.pacer, &self.model, &self.queues)
    }

    /// Rebuild a pacer from [`QueuePacer::checkpoint_parts`].
    pub fn from_checkpoint_parts(
        pacer: FeedbackPacer,
        model: QueueModel,
        queues: Vec<VirtualQueue>,
    ) -> Self {
        assert!(!queues.is_empty(), "at least one shard");
        assert!(model.is_valid(), "low watermark must be below high");
        QueuePacer {
            pacer,
            model,
            queues,
        }
    }
}

/// One AIMD rate change reported by [`QueuePacer::pace_tracked`]: a
/// multiplicative back-off when `to_pps < from_pps`, an additive recovery
/// otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateTransition {
    /// Effective rate before the transition, packets per second.
    pub from_pps: u64,
    /// Effective rate after the transition.
    pub to_pps: u64,
}

/// A token bucket: capacity `burst`, refilled at `rate` tokens per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket that starts full.
    pub fn new(rate_per_sec: f64, burst: f64, now: SimTime) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0);
        TokenBucket {
            rate: rate_per_sec,
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// Refill the bucket up to `now` and try to take one token.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.since(self.last).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_pacer_matches_fixed_pacer_without_feedback() {
        let start = SimTime::at(2, 0);
        let fixed = ProbePacer::new(start, 100);
        let mut adaptive = FeedbackPacer::new(start, 100);
        for i in 0..350u64 {
            assert_eq!(adaptive.next_send_time(), fixed.send_time(i), "probe {i}");
        }
    }

    #[test]
    fn feedback_pacer_backs_off_and_recovers() {
        let mut pacer = FeedbackPacer::new(SimTime::EPOCH, 1024);
        pacer.on_backpressure();
        assert_eq!(pacer.rate(), 512);
        pacer.on_backpressure();
        assert_eq!(pacer.rate(), 256);
        // Additive recovery climbs back to (and not beyond) the base rate.
        for _ in 0..100 {
            pacer.on_progress();
        }
        assert_eq!(pacer.rate(), 1024);
        assert_eq!(pacer.base_rate(), 1024);
        // The floor prevents a total stall.
        for _ in 0..100 {
            pacer.on_backpressure();
        }
        assert_eq!(pacer.rate(), 16);
    }

    #[test]
    fn feedback_pacer_slows_virtual_time_under_backpressure() {
        let mut fast = FeedbackPacer::new(SimTime::EPOCH, 1000);
        let mut slow = FeedbackPacer::new(SimTime::EPOCH, 1000);
        slow.on_backpressure(); // 500 pps
        let mut last_fast = SimTime::EPOCH;
        let mut last_slow = SimTime::EPOCH;
        for _ in 0..2_000 {
            last_fast = fast.next_send_time();
            last_slow = slow.next_send_time();
        }
        assert!(last_slow > last_fast, "halved rate must take longer");
    }

    #[test]
    fn skip_is_equivalent_to_repeated_sends() {
        // Every (skip-count, phase-within-second) combination must leave the
        // pacer in exactly the state that many next_send_time calls would.
        for pre in [0u64, 1, 3, 7, 8, 9] {
            for count in [0u64, 1, 2, 7, 8, 9, 16, 100] {
                let mut stepped = FeedbackPacer::new(SimTime::at(3, 5), 8);
                let mut skipped = FeedbackPacer::new(SimTime::at(3, 5), 8);
                for _ in 0..pre {
                    stepped.next_send_time();
                    skipped.next_send_time();
                }
                for _ in 0..count {
                    stepped.next_send_time();
                }
                skipped.skip(count);
                assert_eq!(stepped, skipped, "pre={pre} count={count}");
                // And the next probe after the jump agrees too.
                assert_eq!(stepped.next_send_time(), skipped.next_send_time());
            }
        }
    }

    #[test]
    fn feedback_pacer_advances_to_window_start() {
        let mut pacer = FeedbackPacer::new(SimTime::at(0, 0), 10);
        pacer.next_send_time();
        pacer.advance_to(SimTime::at(1, 0));
        assert_eq!(pacer.now(), SimTime::at(1, 0));
        assert_eq!(pacer.next_send_time(), SimTime::at(1, 0));
        // Moving backwards is a no-op.
        pacer.advance_to(SimTime::at(0, 12));
        assert_eq!(pacer.now(), SimTime::at(1, 0));
    }

    #[test]
    fn pacer_spreads_probes_over_time() {
        let pacer = ProbePacer::new(SimTime::at(1, 0), 10_000);
        assert_eq!(pacer.send_time(0), SimTime::at(1, 0));
        assert_eq!(pacer.send_time(9_999), SimTime::at(1, 0));
        assert_eq!(
            pacer.send_time(10_000),
            SimTime::at(1, 0) + SimDuration::from_secs(1)
        );
        // The paper's example: E[2^18 - 1] probes at 10 kpps is ~13 seconds.
        let probes = (1u64 << 18) / 2;
        let duration = pacer.duration_for(probes);
        assert_eq!(duration.as_secs(), 14); // ceil(131072 / 10000)
        assert_eq!(
            pacer.finish_time(probes),
            SimTime::at(1, 0) + SimDuration::from_secs(14)
        );
    }

    #[test]
    #[should_panic(expected = "rate must be non-zero")]
    fn pacer_rejects_zero_rate() {
        ProbePacer::new(SimTime::EPOCH, 0);
    }

    /// Satellite property: `drain_rate = ∞` (None) reproduces the
    /// feedback-off trajectory exactly — every send time equals the fixed
    /// [`ProbePacer`]'s, across second rollovers, for any shard count.
    #[test]
    fn unbounded_queue_model_reproduces_feedback_off_exactly() {
        for shards in [1usize, 2, 5] {
            let start = SimTime::at(3, 7);
            let fixed = ProbePacer::new(start, 100);
            let mut queued = QueuePacer::new(start, 100, shards, QueueModel::unbounded());
            for i in 0..1_000u64 {
                let shard = (i % shards as u64) as usize;
                assert_eq!(queued.pace(shard), fixed.send_time(i), "probe {i}");
                assert_eq!(queued.rate(), 100, "rate never moves without depth");
                assert_eq!(queued.depth(), 0, "unbounded drain keeps depth zero");
            }
        }
    }

    /// Satellite property: queue depth is monotone-consistent under `skip` —
    /// skipping a position is the identical state transition to pacing it, so
    /// depths (and the whole pacer state) agree no matter how pace/skip
    /// interleave, and depth at a fixed instant grows by exactly one per
    /// accounted position.
    #[test]
    fn skip_is_the_same_state_transition_as_pace() {
        let model = QueueModel {
            drain_rate: Some(3),
            high_watermark: 10,
            low_watermark: 2,
            ..QueueModel::unbounded()
        };
        let mut paced = QueuePacer::new(SimTime::at(0, 0), 8, 2, model.clone());
        let mut skipped = QueuePacer::new(SimTime::at(0, 0), 8, 2, model);
        for i in 0..500u64 {
            let shard = (i % 2) as usize;
            let before_depth = paced.shard_depth(shard);
            let before_now = paced.now();
            let t = paced.pace(shard);
            // Producer B probes only every third position, skipping the rest.
            if i % 3 == 0 {
                assert_eq!(skipped.pace(shard), t, "position {i}");
            } else {
                skipped.skip(shard);
            }
            assert_eq!(paced, skipped, "position {i}");
            // Within one send second the depth grows by exactly one per
            // accounted position; a rollover retires drain_rate × elapsed.
            if paced.now() == before_now {
                assert_eq!(paced.shard_depth(shard), before_depth + 1, "position {i}");
            }
            assert_eq!(paced.depth(), skipped.depth());
        }
    }

    /// Satellite property: the rate never exceeds the configured ceiling nor
    /// drops below the floor, whatever the queue model does.
    #[test]
    fn queue_pacer_rate_stays_within_ceiling_and_floor() {
        for drain in [Some(0u64), Some(1), Some(7), Some(1_000), None] {
            let model = QueueModel {
                drain_rate: drain,
                high_watermark: 16,
                low_watermark: 4,
                ..QueueModel::unbounded()
            };
            let mut pacer = QueuePacer::new(SimTime::EPOCH, 1024, 3, model);
            let floor = 1024 / 64;
            for i in 0..5_000u64 {
                pacer.pace((i % 3) as usize);
                assert!(pacer.rate() <= 1024, "ceiling at {i}");
                assert!(pacer.rate() >= floor, "floor at {i}");
            }
            if drain == Some(0) {
                assert_eq!(pacer.rate(), floor, "a dead consumer pins the floor");
            }
            if drain.is_none() {
                assert_eq!(pacer.rate(), 1024, "an infinite consumer never backs off");
            }
        }
    }

    /// A slow virtual consumer forces a deterministic back-off: depth builds,
    /// the rate halves at a second rollover, and virtual time stretches
    /// compared to the unthrottled run.
    #[test]
    fn queue_pacer_backs_off_deterministically_under_slow_drain() {
        let model = QueueModel {
            drain_rate: Some(10),
            high_watermark: 50,
            low_watermark: 5,
            ..QueueModel::unbounded()
        };
        let run = || {
            let mut pacer = QueuePacer::new(SimTime::EPOCH, 100, 1, model.clone());
            let mut last = SimTime::EPOCH;
            for _ in 0..1_000u64 {
                last = pacer.pace(0);
            }
            (pacer.rate(), last)
        };
        let (rate_a, last_a) = run();
        let (rate_b, last_b) = run();
        assert_eq!(rate_a, rate_b, "trajectory is a pure function");
        assert_eq!(last_a, last_b);
        assert!(rate_a < 100, "a 10/s consumer must throttle a 100/s prober");
        let mut free = QueuePacer::new(SimTime::EPOCH, 100, 1, QueueModel::unbounded());
        let mut free_last = SimTime::EPOCH;
        for _ in 0..1_000u64 {
            free_last = free.pace(0);
        }
        assert!(last_a > free_last, "throttling must stretch virtual time");
    }

    #[test]
    fn queue_pacer_advance_to_matches_feedback_pacer() {
        let mut pacer = QueuePacer::new(SimTime::at(0, 0), 10, 2, QueueModel::unbounded());
        pacer.pace(0);
        pacer.advance_to(SimTime::at(1, 0));
        assert_eq!(pacer.now(), SimTime::at(1, 0));
        assert_eq!(pacer.pace(1), SimTime::at(1, 0));
        pacer.advance_to(SimTime::at(0, 5));
        assert_eq!(pacer.now(), SimTime::at(1, 0), "never moves backwards");
        assert_eq!(pacer.shards(), 2);
        assert_eq!(pacer.base_rate(), 10);
        assert!(pacer.model().is_valid());
    }

    #[test]
    fn virtual_queue_depth_is_a_pure_function_of_time() {
        let epoch = SimTime::at(1, 0);
        let mut queue = VirtualQueue::new(epoch);
        for _ in 0..100 {
            queue.enqueue();
        }
        assert_eq!(queue.enqueued(), 100);
        assert_eq!(queue.depth_at(epoch, Some(7)), 100);
        assert_eq!(
            queue.depth_at(epoch + SimDuration::from_secs(10), Some(7)),
            30
        );
        // Depth is non-increasing in time and saturates at zero.
        let mut previous = u64::MAX;
        for secs in 0..40 {
            let depth = queue.depth_at(epoch + SimDuration::from_secs(secs), Some(7));
            assert!(depth <= previous);
            previous = depth;
        }
        assert_eq!(
            queue.depth_at(epoch + SimDuration::from_days(1), Some(7)),
            0
        );
        assert_eq!(queue.depth_at(epoch, None), 0, "infinite drain");
    }

    #[test]
    #[should_panic(expected = "low watermark must be below high")]
    fn queue_pacer_rejects_inverted_watermarks() {
        QueuePacer::new(
            SimTime::EPOCH,
            10,
            1,
            QueueModel {
                drain_rate: Some(1),
                high_watermark: 4,
                low_watermark: 4,
                ..QueueModel::unbounded()
            },
        );
    }

    /// Satellite: per-shard drain overrides apply per index and fall back to
    /// the uniform rate past the end of the list.
    #[test]
    fn per_shard_drain_overrides_apply_per_index() {
        let mut model = QueueModel::per_shard_drain([5, 50]);
        assert_eq!(model.drain_for(0), Some(5));
        assert_eq!(model.drain_for(1), Some(50));
        assert_eq!(model.drain_for(2), None, "no uniform fallback configured");
        model.drain_rate = Some(7);
        assert_eq!(model.drain_for(2), Some(7), "uniform fallback");
        assert_eq!(model.drain_for(0), Some(5), "override still wins");
        assert!(model.is_valid());
    }

    /// Satellite: `calibrated` maps measured ns-per-observation straight to
    /// per-shard drain rates — `1e9 / ns`, floored, never zero — so the
    /// `shard_ingest` calibration artifact can feed the model directly.
    #[test]
    fn calibrated_maps_ns_per_observation_to_drain_rates() {
        // 1487 ns/obs and 1283 ns/obs: the seeded baseline.json magnitudes.
        let model = QueueModel::calibrated([1_487, 1_283]);
        assert_eq!(model.drain_for(0), Some(672_494), "1e9 / 1487, floored");
        assert_eq!(model.drain_for(1), Some(779_423), "1e9 / 1283, floored");
        assert_eq!(model.drain_for(2), None, "one rate per measured shard");
        assert!(model.is_valid(), "default watermarks ride along");
        // Degenerate measurements clamp instead of modelling a stuck or
        // infinitely fast consumer.
        let edge = QueueModel::calibrated([0, u64::MAX, 1_000_000_000, 2_000_000_000]);
        assert_eq!(edge.drain_for(0), Some(1_000_000_000), "0 ns reads as 1 ns");
        assert_eq!(edge.drain_for(1), Some(1), "slower than 1/s clamps to 1");
        assert_eq!(edge.drain_for(2), Some(1));
        assert_eq!(edge.drain_for(3), Some(1), "floor would be 0; clamps to 1");
    }

    /// Satellite: asymmetric per-shard drain rates keep the pace/skip
    /// equivalence — a producer owning a strided slice replays the identical
    /// rate trajectory, so feedback over an asymmetric consumer fleet stays
    /// producer-invariant.
    #[test]
    fn asymmetric_per_shard_drain_is_producer_invariant() {
        let model = QueueModel {
            high_watermark: 12,
            low_watermark: 2,
            ..QueueModel::per_shard_drain([2, 40, 9])
        };
        let mut solo = QueuePacer::new(SimTime::at(1, 3), 16, 3, model.clone());
        // Three "producers", each pacing its own stride and skipping foreign
        // positions — the multi-producer discipline.
        let mut fleet: Vec<QueuePacer> = (0..3)
            .map(|_| QueuePacer::new(SimTime::at(1, 3), 16, 3, model.clone()))
            .collect();
        let mut throttled = false;
        for i in 0..2_000u64 {
            let shard = (i % 3) as usize;
            let t = solo.pace(shard);
            throttled |= solo.rate() < 16;
            for (producer, pacer) in fleet.iter_mut().enumerate() {
                if i as usize % 3 == producer {
                    assert_eq!(pacer.pace(shard), t, "position {i} producer {producer}");
                } else {
                    pacer.skip(shard);
                }
            }
            for pacer in &fleet {
                assert_eq!(pacer, &solo, "position {i}");
            }
        }
        assert!(throttled, "the slow shard must throttle the fleet");
        // The slowest shard dominates the depth signal.
        assert!(solo.shard_depth(0) >= solo.shard_depth(1));
    }

    #[test]
    fn pacer_checkpoint_parts_roundtrip() {
        let mut pacer = FeedbackPacer::new(SimTime::at(2, 5), 100);
        for _ in 0..317 {
            pacer.next_send_time();
        }
        pacer.on_backpressure();
        let restored = FeedbackPacer::from_checkpoint_parts(pacer.checkpoint_parts());
        assert_eq!(restored, pacer);

        let mut queue = VirtualQueue::new(SimTime::at(2, 5));
        queue.enqueue();
        queue.enqueue();
        assert_eq!(
            VirtualQueue::from_checkpoint_parts(queue.checkpoint_parts()),
            queue
        );

        let mut paced = QueuePacer::new(SimTime::at(2, 5), 64, 2, QueueModel::with_drain_rate(3));
        for i in 0..500u64 {
            paced.pace((i % 2) as usize);
        }
        let (fp, model, queues) = paced.checkpoint_parts();
        let rebuilt = QueuePacer::from_checkpoint_parts(*fp, model.clone(), queues.to_vec());
        assert_eq!(rebuilt, paced);
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles() {
        let now = SimTime::at(0, 0);
        let mut bucket = TokenBucket::new(2.0, 3.0, now);
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(!bucket.try_take(now), "burst exhausted");
        // One second later two tokens have accrued.
        let later = now + SimDuration::from_secs(1);
        assert!(bucket.try_take(later));
        assert!(bucket.try_take(later));
        assert!(!bucket.try_take(later));
        assert!(bucket.available() < 1.0);
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let now = SimTime::at(0, 0);
        let mut bucket = TokenBucket::new(10.0, 2.0, now);
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        // A long idle period refills only to the burst cap.
        let much_later = now + SimDuration::from_days(1);
        assert!(bucket.try_take(much_later));
        assert!(bucket.try_take(much_later));
        assert!(!bucket.try_take(much_later));
    }
}

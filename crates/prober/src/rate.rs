//! Probe pacing against the virtual clock.
//!
//! The paper probes at a deliberately conservative 10k packets per second
//! (§3.1, §7), and several of its cost arguments (e.g. "about 13 seconds at
//! 10 kpps" for a /46 rotation pool of /64s, or the "75 seconds of active
//! probing" for EUI-64 IID #2 in Table 2) are statements about how long a
//! probe budget takes to spend at that rate. [`ProbePacer`] converts probe
//! indices into virtual send times at a fixed rate; [`TokenBucket`] provides
//! the classic bucket abstraction for burst-limited senders and for modelling
//! ICMPv6 error rate limits.

use serde::{Deserialize, Serialize};

use scent_simnet::{SimDuration, SimTime};

/// Deterministic pacing: probe `i` of a scan is sent at
/// `start + i / packets_per_second`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbePacer {
    /// Time the scan starts.
    pub start: SimTime,
    /// Probe budget per second.
    pub packets_per_second: u64,
}

impl ProbePacer {
    /// Create a pacer starting at `start` with the given rate (which must be
    /// non-zero).
    pub fn new(start: SimTime, packets_per_second: u64) -> Self {
        assert!(packets_per_second > 0, "rate must be non-zero");
        ProbePacer {
            start,
            packets_per_second,
        }
    }

    /// The virtual send time of the `index`th probe.
    pub fn send_time(&self, index: u64) -> SimTime {
        self.start + SimDuration::from_secs(index / self.packets_per_second)
    }

    /// The duration needed to send `count` probes at this rate, rounded up to
    /// whole seconds.
    pub fn duration_for(&self, count: u64) -> SimDuration {
        SimDuration::from_secs(count.div_ceil(self.packets_per_second))
    }

    /// The time the scan finishes if it sends `count` probes.
    pub fn finish_time(&self, count: u64) -> SimTime {
        self.start + self.duration_for(count)
    }
}

/// A pacer with AIMD rate feedback for continuous streaming scans.
///
/// The batch [`ProbePacer`] computes send times from a fixed rate; a
/// long-running monitor instead has consumers (inference shards) that can
/// fall behind. `FeedbackPacer` keeps a current rate that backs off
/// multiplicatively when the consumer signals backpressure
/// ([`FeedbackPacer::on_backpressure`]) and recovers additively while the
/// stream drains freely ([`FeedbackPacer::on_progress`]) — classic AIMD
/// against the virtual clock, bounded below so the monitor never stalls
/// entirely and above by the configured budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackPacer {
    base_pps: u64,
    current_pps: u64,
    min_pps: u64,
    cursor: SimTime,
    sent_in_second: u64,
}

impl FeedbackPacer {
    /// Create a pacer starting at `start` with a non-zero probe budget.
    pub fn new(start: SimTime, packets_per_second: u64) -> Self {
        assert!(packets_per_second > 0, "rate must be non-zero");
        FeedbackPacer {
            base_pps: packets_per_second,
            current_pps: packets_per_second,
            min_pps: (packets_per_second / 64).max(1),
            cursor: start,
            sent_in_second: 0,
        }
    }

    /// The send time of the next probe at the current rate.
    pub fn next_send_time(&mut self) -> SimTime {
        if self.sent_in_second >= self.current_pps {
            self.cursor += SimDuration::from_secs(1);
            self.sent_in_second = 0;
        }
        self.sent_in_second += 1;
        self.cursor
    }

    /// Advance the pacer as if `count` probes had been sent, without sending
    /// them. Exactly equivalent to calling [`FeedbackPacer::next_send_time`]
    /// `count` times (at the current rate) in O(1) — this is what lets a
    /// sharded producer that owns only a slice of a scan pass keep its pacer
    /// state bit-identical to the single-producer pacer that paces every
    /// position.
    pub fn skip(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        let total = self.sent_in_second + count;
        self.cursor += SimDuration::from_secs((total - 1) / self.current_pps);
        self.sent_in_second = (total - 1) % self.current_pps + 1;
    }

    /// Multiplicative back-off: the consumer could not keep up.
    pub fn on_backpressure(&mut self) {
        self.current_pps = (self.current_pps / 2).max(self.min_pps);
    }

    /// Additive recovery: the stream is draining freely.
    pub fn on_progress(&mut self) {
        let step = (self.base_pps / 16).max(1);
        self.current_pps = (self.current_pps + step).min(self.base_pps);
    }

    /// The current effective rate.
    pub fn rate(&self) -> u64 {
        self.current_pps
    }

    /// The configured (maximum) rate.
    pub fn base_rate(&self) -> u64 {
        self.base_pps
    }

    /// Advance to a window boundary: the next probe is sent no earlier than
    /// `start` (virtual time never runs backwards).
    pub fn advance_to(&mut self, start: SimTime) {
        if start > self.cursor {
            self.cursor = start;
            self.sent_in_second = 0;
        }
    }

    /// The virtual time the pacer has reached.
    pub fn now(&self) -> SimTime {
        self.cursor
    }
}

/// A token bucket: capacity `burst`, refilled at `rate` tokens per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket that starts full.
    pub fn new(rate_per_sec: f64, burst: f64, now: SimTime) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0);
        TokenBucket {
            rate: rate_per_sec,
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// Refill the bucket up to `now` and try to take one token.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.since(self.last).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_pacer_matches_fixed_pacer_without_feedback() {
        let start = SimTime::at(2, 0);
        let fixed = ProbePacer::new(start, 100);
        let mut adaptive = FeedbackPacer::new(start, 100);
        for i in 0..350u64 {
            assert_eq!(adaptive.next_send_time(), fixed.send_time(i), "probe {i}");
        }
    }

    #[test]
    fn feedback_pacer_backs_off_and_recovers() {
        let mut pacer = FeedbackPacer::new(SimTime::EPOCH, 1024);
        pacer.on_backpressure();
        assert_eq!(pacer.rate(), 512);
        pacer.on_backpressure();
        assert_eq!(pacer.rate(), 256);
        // Additive recovery climbs back to (and not beyond) the base rate.
        for _ in 0..100 {
            pacer.on_progress();
        }
        assert_eq!(pacer.rate(), 1024);
        assert_eq!(pacer.base_rate(), 1024);
        // The floor prevents a total stall.
        for _ in 0..100 {
            pacer.on_backpressure();
        }
        assert_eq!(pacer.rate(), 16);
    }

    #[test]
    fn feedback_pacer_slows_virtual_time_under_backpressure() {
        let mut fast = FeedbackPacer::new(SimTime::EPOCH, 1000);
        let mut slow = FeedbackPacer::new(SimTime::EPOCH, 1000);
        slow.on_backpressure(); // 500 pps
        let mut last_fast = SimTime::EPOCH;
        let mut last_slow = SimTime::EPOCH;
        for _ in 0..2_000 {
            last_fast = fast.next_send_time();
            last_slow = slow.next_send_time();
        }
        assert!(last_slow > last_fast, "halved rate must take longer");
    }

    #[test]
    fn skip_is_equivalent_to_repeated_sends() {
        // Every (skip-count, phase-within-second) combination must leave the
        // pacer in exactly the state that many next_send_time calls would.
        for pre in [0u64, 1, 3, 7, 8, 9] {
            for count in [0u64, 1, 2, 7, 8, 9, 16, 100] {
                let mut stepped = FeedbackPacer::new(SimTime::at(3, 5), 8);
                let mut skipped = FeedbackPacer::new(SimTime::at(3, 5), 8);
                for _ in 0..pre {
                    stepped.next_send_time();
                    skipped.next_send_time();
                }
                for _ in 0..count {
                    stepped.next_send_time();
                }
                skipped.skip(count);
                assert_eq!(stepped, skipped, "pre={pre} count={count}");
                // And the next probe after the jump agrees too.
                assert_eq!(stepped.next_send_time(), skipped.next_send_time());
            }
        }
    }

    #[test]
    fn feedback_pacer_advances_to_window_start() {
        let mut pacer = FeedbackPacer::new(SimTime::at(0, 0), 10);
        pacer.next_send_time();
        pacer.advance_to(SimTime::at(1, 0));
        assert_eq!(pacer.now(), SimTime::at(1, 0));
        assert_eq!(pacer.next_send_time(), SimTime::at(1, 0));
        // Moving backwards is a no-op.
        pacer.advance_to(SimTime::at(0, 12));
        assert_eq!(pacer.now(), SimTime::at(1, 0));
    }

    #[test]
    fn pacer_spreads_probes_over_time() {
        let pacer = ProbePacer::new(SimTime::at(1, 0), 10_000);
        assert_eq!(pacer.send_time(0), SimTime::at(1, 0));
        assert_eq!(pacer.send_time(9_999), SimTime::at(1, 0));
        assert_eq!(
            pacer.send_time(10_000),
            SimTime::at(1, 0) + SimDuration::from_secs(1)
        );
        // The paper's example: E[2^18 - 1] probes at 10 kpps is ~13 seconds.
        let probes = (1u64 << 18) / 2;
        let duration = pacer.duration_for(probes);
        assert_eq!(duration.as_secs(), 14); // ceil(131072 / 10000)
        assert_eq!(
            pacer.finish_time(probes),
            SimTime::at(1, 0) + SimDuration::from_secs(14)
        );
    }

    #[test]
    #[should_panic(expected = "rate must be non-zero")]
    fn pacer_rejects_zero_rate() {
        ProbePacer::new(SimTime::EPOCH, 0);
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles() {
        let now = SimTime::at(0, 0);
        let mut bucket = TokenBucket::new(2.0, 3.0, now);
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(!bucket.try_take(now), "burst exhausted");
        // One second later two tokens have accrued.
        let later = now + SimDuration::from_secs(1);
        assert!(bucket.try_take(later));
        assert!(bucket.try_take(later));
        assert!(!bucket.try_take(later));
        assert!(bucket.available() < 1.0);
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let now = SimTime::at(0, 0);
        let mut bucket = TokenBucket::new(10.0, 2.0, now);
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        // A long idle period refills only to the burst cap.
        let much_later = now + SimDuration::from_days(1);
        assert!(bucket.try_take(much_later));
        assert!(bucket.try_take(much_later));
        assert!(!bucket.try_take(much_later));
    }
}

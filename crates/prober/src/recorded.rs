//! Record/replay measurement backends.
//!
//! [`RecordingBackend`] wraps any live backend and captures every probe as a
//! [`ProbeRecord`] and every traceroute as a [`TraceRecord`], together with a
//! snapshot of the backend's control plane ([`RecordedWorld`]). The captured
//! [`ProbeLog`] can then be replayed by [`RecordedBackend`], which implements
//! [`ProbeTransport`] + [`WorldView`] itself — a second, fully independent
//! backend proving that the measurement pipelines really are
//! backend-agnostic: a pipeline run against the replay produces the same
//! report as the run that was recorded (test-enforced in the integration
//! suite).
//!
//! Replay is keyed on `(target, virtual send second)`. That matches any
//! deterministic recording where each `(target, time)` pair elicits a single
//! outcome — which holds for every simulated world without ICMPv6 rate
//! limiting, and for the deterministic pacing both the batch scanner and the
//! streamed sources use. A duplicate key keeps the outcome recorded last.

use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use scent_bgp::{AsRegistry, Asn, Rib, RibEntry};
use scent_simnet::{CpeId, ProbeReply, SimTime, TraceHop};

use crate::records::{ProbeRecord, ResponseRecord};
use crate::yarrp::TraceRecord;
use crate::{ProbeTransport, WorldView};

/// A serializable snapshot of a backend's control plane: everything
/// [`WorldView`] answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedWorld {
    /// The vantage point's source address.
    pub vantage: Ipv6Addr,
    /// The world/campaign seed.
    pub world_seed: u64,
    /// Every announced prefix and its origin AS.
    pub rib: Vec<RibEntry>,
    /// AS metadata.
    pub as_registry: AsRegistry,
}

/// One recorded traceroute: the virtual time it ran plus its result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedTrace {
    /// Virtual time the traceroute ran.
    pub at: SimTime,
    /// The hops observed.
    pub record: TraceRecord,
}

/// A complete capture of one measurement run: the world snapshot, every
/// probe outcome, and every traceroute.
///
/// Logs are *canonically ordered* ([`RecordingBackend::finish`] sorts probes
/// by `(send time, target)` and traces by `(send time, target)`), so two
/// captures of the same deterministic run compare equal even when the run
/// probed from multiple producer threads, whose wall-clock capture order is
/// scheduler-dependent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeLog {
    /// The control-plane snapshot.
    pub world: RecordedWorld,
    /// Every probe sent, in canonical `(sent_at, target)` order
    /// ([`ResponseRecord`]s inside).
    pub probes: Vec<ProbeRecord>,
    /// Every traceroute run, in canonical `(at, target)` order
    /// ([`TraceRecord`]s inside).
    pub traces: Vec<RecordedTrace>,
}

impl ProbeLog {
    /// Number of probes captured.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the log captured no probes at all.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

/// A pass-through backend that records everything crossing it.
///
/// Wrap a live backend, run any campaign, then call
/// [`RecordingBackend::finish`] to obtain the [`ProbeLog`].
pub struct RecordingBackend<'a, B: ?Sized> {
    inner: &'a B,
    probes: Mutex<Vec<ProbeRecord>>,
    traces: Mutex<Vec<RecordedTrace>>,
}

impl<'a, B: ProbeTransport + WorldView + ?Sized> RecordingBackend<'a, B> {
    /// Record everything sent through `inner`.
    pub fn new(inner: &'a B) -> Self {
        RecordingBackend {
            inner,
            probes: Mutex::new(Vec::new()),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// Stop recording and return the captured log, canonically ordered:
    /// probes sorted by `(sent_at, target)`, traces by `(at, target)`. A
    /// deterministic run recorded twice therefore yields byte-equal logs no
    /// matter how many producer threads drove the probing or how the OS
    /// interleaved them (the sort is stable, so duplicate `(target, second)`
    /// keys keep their capture order and replay still sees the last one).
    pub fn finish(self) -> ProbeLog {
        let mut probes = self.probes.into_inner().expect("recorder lock poisoned");
        probes.sort_by_key(|record| (record.sent_at, record.target));
        let mut traces = self.traces.into_inner().expect("recorder lock poisoned");
        traces.sort_by_key(|trace| (trace.at, trace.record.target));
        ProbeLog {
            world: RecordedWorld {
                vantage: self.inner.vantage(),
                world_seed: self.inner.world_seed(),
                rib: self.inner.rib().entries(),
                as_registry: self.inner.as_registry().clone(),
            },
            probes,
            traces,
        }
    }
}

impl<B: ProbeTransport + ?Sized> ProbeTransport for RecordingBackend<'_, B> {
    fn probe(&self, target: Ipv6Addr, t: SimTime) -> Option<ProbeReply> {
        let reply = self.inner.probe(target, t);
        self.probes
            .lock()
            .expect("recorder lock poisoned")
            .push(ProbeRecord {
                target,
                sent_at: t,
                response: reply.map(|r| ResponseRecord {
                    source: r.source,
                    kind: r.kind,
                }),
            });
        reply
    }

    fn trace(&self, target: Ipv6Addr, t: SimTime, max_hops: u8) -> Vec<TraceHop> {
        let hops = self.inner.trace(target, t, max_hops);
        self.traces
            .lock()
            .expect("recorder lock poisoned")
            .push(RecordedTrace {
                at: t,
                record: TraceRecord::from_hops(target, hops.clone()),
            });
        hops
    }
}

impl<B: WorldView + ?Sized> WorldView for RecordingBackend<'_, B> {
    fn vantage(&self) -> Ipv6Addr {
        self.inner.vantage()
    }

    fn rib(&self) -> &Rib {
        self.inner.rib()
    }

    fn as_registry(&self) -> &AsRegistry {
        self.inner.as_registry()
    }

    fn world_seed(&self) -> u64 {
        self.inner.world_seed()
    }
}

/// A backend that replays a [`ProbeLog`]: probes and traceroutes answer
/// exactly what the recorded run observed, and the world view answers from
/// the recorded snapshot. Probing anything the recording never sent is
/// silent, like unallocated address space.
pub struct RecordedBackend {
    vantage: Ipv6Addr,
    world_seed: u64,
    rib: Rib,
    as_registry: AsRegistry,
    probes: HashMap<(Ipv6Addr, u64), Option<ResponseRecord>>,
    traces: HashMap<(Ipv6Addr, u64), Vec<TraceHop>>,
}

impl RecordedBackend {
    /// The ground-truth CPE identity attached to replayed probe replies.
    /// Replay has no ground truth, so this sentinel marks every reply;
    /// measurement code never reads the field.
    pub const REPLAYED_CPE: CpeId = CpeId {
        pool: u32::MAX,
        index: u32::MAX,
    };

    /// Build a replay backend from a captured log.
    pub fn from_log(log: ProbeLog) -> Self {
        let rib: Rib = log.world.rib.into_iter().collect();
        let mut probes = HashMap::with_capacity(log.probes.len());
        for record in log.probes {
            probes.insert((record.target, record.sent_at.as_secs()), record.response);
        }
        let mut traces = HashMap::with_capacity(log.traces.len());
        for trace in log.traces {
            traces.insert((trace.record.target, trace.at.as_secs()), trace.record.hops);
        }
        RecordedBackend {
            vantage: log.world.vantage,
            world_seed: log.world.world_seed,
            rib,
            as_registry: log.world.as_registry,
            probes,
            traces,
        }
    }

    /// Number of distinct `(target, second)` probe outcomes replayable.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }
}

impl From<ProbeLog> for RecordedBackend {
    fn from(log: ProbeLog) -> Self {
        RecordedBackend::from_log(log)
    }
}

impl ProbeTransport for RecordedBackend {
    fn probe(&self, target: Ipv6Addr, t: SimTime) -> Option<ProbeReply> {
        let response = self.probes.get(&(target, t.as_secs())).copied().flatten()?;
        Some(ProbeReply {
            source: response.source,
            kind: response.kind,
            asn: self.rib.origin(response.source).unwrap_or(Asn(0)),
            cpe: Self::REPLAYED_CPE,
        })
    }

    fn trace(&self, target: Ipv6Addr, t: SimTime, max_hops: u8) -> Vec<TraceHop> {
        let Some(hops) = self.traces.get(&(target, t.as_secs())) else {
            return Vec::new();
        };
        hops.iter()
            .copied()
            .filter(|hop| hop.ttl <= max_hops)
            .collect()
    }
}

impl WorldView for RecordedBackend {
    fn vantage(&self) -> Ipv6Addr {
        self.vantage
    }

    fn rib(&self) -> &Rib {
        &self.rib
    }

    fn as_registry(&self) -> &AsRegistry {
        &self.as_registry
    }

    fn world_seed(&self) -> u64 {
        self.world_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::TargetGenerator;
    use crate::zmap6::{Scanner, ScannerConfig};
    use scent_simnet::{scenarios, Engine};

    #[test]
    fn replayed_scan_matches_the_recorded_one() {
        let engine = Engine::build(scenarios::entel_like(5)).unwrap();
        let pool = engine.pools()[0].config.prefix;
        let targets = TargetGenerator::new(1).one_per_subnet(&pool, 56);
        let scanner = Scanner::new(ScannerConfig::default());

        let recorder = RecordingBackend::new(&engine);
        let live = scanner.scan(&recorder, &targets, SimTime::at(1, 9));
        let log = recorder.finish();
        assert_eq!(log.len(), targets.len());
        assert!(!log.is_empty());
        assert_eq!(log.world.world_seed, engine.config().seed);

        let replay = RecordedBackend::from_log(log);
        assert_eq!(replay.probe_count(), targets.len());
        let replayed = scanner.scan(&replay, &targets, SimTime::at(1, 9));
        assert_eq!(live, replayed);
        assert!(live.responses() > 0, "a silent world proves nothing");
    }

    #[test]
    fn replayed_world_view_matches() {
        let engine = Engine::build(scenarios::versatel_like(9)).unwrap();
        let recorder = RecordingBackend::new(&engine);
        assert_eq!(recorder.vantage(), engine.vantage());
        let replay = RecordedBackend::from_log(recorder.finish());
        assert_eq!(replay.vantage(), engine.vantage());
        assert_eq!(replay.world_seed(), engine.config().seed);
        assert_eq!(replay.rib().entries(), engine.rib().entries());
        assert_eq!(replay.as_registry(), engine.as_registry());
    }

    #[test]
    fn traces_replay_and_unrecorded_space_is_silent() {
        let engine = Engine::build(scenarios::versatel_like(4)).unwrap();
        let pool = engine.pools()[0].config.prefix;
        let target = TargetGenerator::new(2).random_addr_in(&pool);
        let t = SimTime::at(1, 10);

        let recorder = RecordingBackend::new(&engine);
        let live_hops = recorder.trace(target, t, 32);
        let replay = RecordedBackend::from_log(recorder.finish());
        assert_eq!(replay.trace(target, t, 32), live_hops);
        // A shorter hop limit truncates the replay.
        if live_hops.len() > 1 {
            assert_eq!(replay.trace(target, t, 1).len(), 1);
        }
        // Unrecorded targets and times answer nothing.
        assert!(replay.probe(target, t).is_none() || engine.probe(target, t).is_some());
        assert!(replay.probe("3fff::1".parse().unwrap(), t).is_none());
        assert!(replay.trace(target, SimTime::at(40, 0), 32).is_empty());
    }
}

//! Target address generation.
//!
//! The methodology never probes addresses it expects to exist: it probes one
//! *pseudo-random* IID inside each subnet of interest and relies on the CPE's
//! ICMPv6 error to reveal the periphery (§3.1). Target generators therefore
//! produce "one random address per subnet at granularity G" lists for
//! prefixes, rotation pools and candidate /48s.

use std::net::Ipv6Addr;

use scent_ipv6::Ipv6Prefix;
use scent_simnet::det::{hash2, hash3};

use crate::permutation::RandomPermutation;

/// Deterministic target generation keyed on a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetGenerator {
    seed: u64,
}

impl TargetGenerator {
    /// Create a generator. All addresses produced are pure functions of the
    /// seed and the subnet they fall in, so re-generating a target list for a
    /// later scan reproduces the exact same addresses (as the paper does by
    /// reusing the zmap seed across daily scans).
    pub fn new(seed: u64) -> Self {
        TargetGenerator { seed }
    }

    /// A pseudo-random address inside `prefix` (host bits drawn from the
    /// seed, network bits preserved).
    pub fn random_addr_in(&self, prefix: &Ipv6Prefix) -> Ipv6Addr {
        let h1 = hash3(
            self.seed,
            prefix.network_bits() as u64,
            (prefix.network_bits() >> 64) as u64,
            prefix.len() as u64,
        );
        let h2 = hash2(self.seed, h1, 0x7467_656e); // "tgen"
        let host = ((h1 as u128) << 64) | h2 as u128;
        prefix.addr_with_host_bits(host)
    }

    /// One pseudo-random target per subnet of length `sub_len` inside
    /// `prefix`, in subnet order.
    ///
    /// This is the core workload shape of the paper: one probe per /64 of a
    /// candidate /48 (§4.3), one probe per /56 for density inference (§4.2),
    /// one probe per inferred customer allocation for tracking (§6).
    pub fn one_per_subnet(&self, prefix: &Ipv6Prefix, sub_len: u8) -> Vec<Ipv6Addr> {
        let count = prefix
            .num_subnets(sub_len)
            .expect("sub_len not shorter than prefix");
        let mut targets = Vec::with_capacity(count.min(1 << 24) as usize);
        for sub in prefix.subnets(sub_len).expect("validated above") {
            targets.push(self.random_addr_in(&sub));
        }
        targets
    }

    /// One target per allocation-sized block across each of several pools —
    /// the tracking workload of §6: "we chose a target in each allocation
    /// size block throughout the entire pool".
    pub fn per_allocation(&self, pools: &[Ipv6Prefix], allocation_len: u8) -> Vec<Ipv6Addr> {
        let mut targets = Vec::new();
        for pool in pools {
            targets.extend(self.one_per_subnet(pool, allocation_len.max(pool.len())));
        }
        targets
    }

    /// Targets for a whole list of /48 candidates at a given granularity.
    pub fn per_candidate_48(&self, candidates: &[Ipv6Prefix], granularity: u8) -> Vec<Ipv6Addr> {
        let mut targets = Vec::new();
        for candidate in candidates {
            targets.extend(self.one_per_subnet(candidate, granularity.max(candidate.len())));
        }
        targets
    }
}

/// One target drawn from a [`TargetStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedTarget {
    /// The scan pass (window) this target belongs to.
    pub window: u64,
    /// Probing-order index of the target within its window.
    pub seq: u64,
    /// The target address.
    pub target: Ipv6Addr,
}

/// The contiguous sub-range of `0..n` owned by producer `producer` of
/// `producers` when a probing-order sequence is split into even disjoint
/// *contiguous* slices: `[n*k/P, n*(k+1)/P)`. Concatenating the slices for
/// `k = 0..P` reconstructs `0..n` exactly. (The streaming engine's producer
/// sharding itself uses *strided* slices — see [`TargetStream::slice`] — so
/// that a k-way merge consumes all producers round-robin instead of draining
/// them one after another; contiguous bounds remain useful for static work
/// partitioning.)
pub fn slice_bounds(n: usize, producer: usize, producers: usize) -> (usize, usize) {
    assert!(producers > 0, "at least one producer");
    assert!(producer < producers, "producer index out of range");
    (n * producer / producers, n * (producer + 1) / producers)
}

/// An endless target stream for continuous monitoring: the same target list,
/// revisited window after window in the same zmap-permuted order (the paper
/// probes "the same addresses every 24 hours in the same order").
///
/// This is the streaming counterpart of building a target `Vec` and scanning
/// it repeatedly: instead of materializing per-window scans, a consumer pulls
/// one [`StreamedTarget`] at a time, forever.
///
/// A stream can be restricted to a *strided slice* of each window's probing
/// order ([`TargetStream::slice`]): producer `k` of `P` yields exactly the
/// positions `k, k + P, k + 2P, …` of every window, with the same global
/// `seq` numbers the full stream would assign, so P sliced streams partition
/// the full stream's output without coordinating — and a k-way merge over
/// them consumes every producer round-robin, which is what keeps all P
/// producer threads busy at once.
#[derive(Debug, Clone)]
pub struct TargetStream {
    targets: Vec<Ipv6Addr>,
    order: Vec<u64>,
    window: u64,
    /// The window numbering starts at (0 unless the stream is one epoch of a
    /// churning run — see [`TargetStream::starting_at_window`]).
    base_window: u64,
    pos: usize,
    /// First probing-order position this stream yields per window.
    offset: usize,
    /// Distance between consecutive owned positions (1 = the whole order).
    step: usize,
}

impl TargetStream {
    /// Build a stream over one target per subnet (at `granularity`) of each
    /// candidate prefix, visiting targets in the pseudo-random order given by
    /// `order_seed` (or list order when `randomize` is false).
    pub fn new(
        generator: &TargetGenerator,
        candidates: &[Ipv6Prefix],
        granularity: u8,
        order_seed: u64,
        randomize: bool,
    ) -> Self {
        let targets = generator.per_candidate_48(candidates, granularity);
        Self::over(targets, order_seed, randomize)
    }

    /// Build a stream over an explicit target list.
    pub fn over(targets: Vec<Ipv6Addr>, order_seed: u64, randomize: bool) -> Self {
        let order = RandomPermutation::scan_order(targets.len() as u64, order_seed, randomize);
        TargetStream {
            targets,
            order,
            window: 0,
            base_window: 0,
            pos: 0,
            offset: 0,
            step: 1,
        }
    }

    /// Start the stream's window numbering at `window` instead of 0. Must be
    /// called before the first draw.
    ///
    /// This is what lets a continuous run revise its target set at epoch
    /// boundaries: each epoch builds a fresh stream over the revised list
    /// whose windows carry the *global* window numbers, so downstream
    /// consumers (send-time pacing, rotation detection, tracking) see one
    /// uninterrupted window sequence — send times and `seq` stay a pure
    /// function of the configuration plus the revision history.
    pub fn starting_at_window(mut self, window: u64) -> Self {
        assert!(
            self.window == self.base_window && self.pos == self.offset,
            "rebase a fresh stream, not one already drawn from"
        );
        self.base_window = window;
        self.window = window;
        self
    }

    /// Restrict the stream to producer `producer`'s strided slice of each
    /// window's probing order: positions `producer, producer + producers, …`.
    /// Must be called before the first draw. The sliced stream's `seq`
    /// numbers are the full stream's — position `p` of window `w` is yielded
    /// as `seq == p`.
    pub fn slice(mut self, producer: usize, producers: usize) -> Self {
        assert!(producers > 0, "at least one producer");
        assert!(producer < producers, "producer index out of range");
        assert!(
            self.window == self.base_window && self.pos == self.offset,
            "slice a fresh stream, not one already drawn from"
        );
        assert!(
            (self.offset, self.step) == (0, 1),
            "stream is already sliced; apply a slice exactly once"
        );
        self.offset = producer;
        self.step = producers;
        self.pos = producer;
        self
    }

    /// Number of targets per window (of the full, unsliced order).
    pub fn window_len(&self) -> usize {
        self.targets.len()
    }

    /// Number of targets per window this stream itself yields (`window_len`
    /// unless sliced).
    pub fn slice_len(&self) -> usize {
        if self.offset >= self.targets.len() {
            return 0;
        }
        (self.targets.len() - self.offset).div_ceil(self.step)
    }

    /// The strided slice of each window's probing order this stream yields:
    /// `(offset, step)` — positions `offset, offset + step, …`;
    /// `(0, 1)` unless sliced.
    pub fn slice_stride(&self) -> (usize, usize) {
        (self.offset, self.step)
    }

    /// The window the next target will come from.
    pub fn current_window(&self) -> u64 {
        self.window
    }

    /// The target at probing-order position `pos` — identical every window,
    /// and independent of any slice applied to this stream. This is what lets
    /// a sliced producer account positions *other* producers own (e.g. to
    /// feed the virtual-queue feedback model) without drawing them.
    pub fn target_at(&self, pos: usize) -> std::net::Ipv6Addr {
        self.targets[self.order[pos] as usize]
    }

    /// Draw the next target. Returns `None` only for an empty target list (or
    /// an empty slice); otherwise the stream is infinite, advancing to the
    /// next window after each full pass over its slice.
    pub fn next_target(&mut self) -> Option<StreamedTarget> {
        if self.offset >= self.targets.len() {
            return None;
        }
        let seq = self.pos as u64;
        let target = self.targets[self.order[self.pos] as usize];
        let window = self.window;
        self.pos += self.step;
        if self.pos >= self.targets.len() {
            self.pos = self.offset;
            self.window += 1;
        }
        Some(StreamedTarget {
            window,
            seq,
            target,
        })
    }

    /// The stream's complete internal state, in declaration order — what a
    /// checkpoint encodes: `(targets, order, window, base_window, pos,
    /// offset, step)`.
    #[allow(clippy::type_complexity)]
    pub fn checkpoint_parts(&self) -> (&[Ipv6Addr], &[u64], u64, u64, usize, usize, usize) {
        (
            &self.targets,
            &self.order,
            self.window,
            self.base_window,
            self.pos,
            self.offset,
            self.step,
        )
    }

    /// Rebuild a stream (possibly mid-window) from
    /// [`TargetStream::checkpoint_parts`].
    pub fn from_checkpoint_parts(
        targets: Vec<Ipv6Addr>,
        order: Vec<u64>,
        window: u64,
        base_window: u64,
        pos: usize,
        offset: usize,
        step: usize,
    ) -> Self {
        assert_eq!(targets.len(), order.len(), "order permutes the targets");
        assert!(step > 0, "stride must be non-zero");
        TargetStream {
            targets,
            order,
            window,
            base_window,
            pos,
            offset,
            step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn random_addr_is_inside_and_deterministic() {
        let generator = TargetGenerator::new(42);
        let prefix = p("2001:db8:1:2::/64");
        let a = generator.random_addr_in(&prefix);
        let b = generator.random_addr_in(&prefix);
        assert_eq!(a, b);
        assert!(prefix.contains(a));
        let other = TargetGenerator::new(43).random_addr_in(&prefix);
        assert_ne!(a, other);
        // Different subnets produce different host bits (not just different
        // networks), since the subnet is part of the hash input.
        let c = generator.random_addr_in(&p("2001:db8:1:3::/64"));
        assert_ne!(
            scent_ipv6::interface_id(a),
            scent_ipv6::interface_id(c),
            "host bits should vary across subnets"
        );
    }

    #[test]
    fn one_per_subnet_counts_and_membership() {
        let generator = TargetGenerator::new(1);
        let prefix = p("2001:db8::/56");
        let targets = generator.one_per_subnet(&prefix, 64);
        assert_eq!(targets.len(), 256);
        let mut subnets = HashSet::new();
        for t in &targets {
            assert!(prefix.contains(*t));
            subnets.insert(Ipv6Prefix::enclosing_64(*t));
        }
        // Exactly one target per /64.
        assert_eq!(subnets.len(), 256);
    }

    #[test]
    fn one_per_subnet_same_length_is_single_target() {
        let generator = TargetGenerator::new(1);
        let prefix = p("2001:db8::/64");
        let targets = generator.one_per_subnet(&prefix, 64);
        assert_eq!(targets.len(), 1);
        assert!(prefix.contains(targets[0]));
    }

    #[test]
    fn per_allocation_covers_all_pools() {
        let generator = TargetGenerator::new(9);
        let pools = [p("2001:db8:100::/46"), p("2001:db8:200::/46")];
        let targets = generator.per_allocation(&pools, 56);
        // 2^(56-46) = 1024 per pool.
        assert_eq!(targets.len(), 2048);
        assert!(targets[..1024].iter().all(|t| pools[0].contains(*t)));
        assert!(targets[1024..].iter().all(|t| pools[1].contains(*t)));
    }

    #[test]
    fn target_stream_cycles_windows_in_stable_order() {
        let generator = TargetGenerator::new(5);
        let candidates = [p("2001:db8:1::/48")];
        let mut stream = TargetStream::new(&generator, &candidates, 56, 77, true);
        assert_eq!(stream.window_len(), 256);
        let first_pass: Vec<_> = (0..256).map(|_| stream.next_target().unwrap()).collect();
        assert!(first_pass.iter().all(|t| t.window == 0));
        assert_eq!(stream.current_window(), 1);
        let second_pass: Vec<_> = (0..256).map(|_| stream.next_target().unwrap()).collect();
        assert!(second_pass.iter().all(|t| t.window == 1));
        // Same order every window, and the order is a permutation of the
        // whole target set.
        let a: Vec<_> = first_pass.iter().map(|t| t.target).collect();
        let b: Vec<_> = second_pass.iter().map(|t| t.target).collect();
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<HashSet<_>>().len(), 256);
        // Seq restarts each window.
        assert_eq!(second_pass[0].seq, 0);
        assert_eq!(second_pass[255].seq, 255);
    }

    #[test]
    fn target_stream_in_order_and_empty() {
        let mut empty = TargetStream::over(Vec::new(), 1, true);
        assert!(empty.next_target().is_none());
        let targets = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        ];
        let mut stream = TargetStream::over(targets.clone(), 1, false);
        assert_eq!(stream.next_target().unwrap().target, targets[0]);
        assert_eq!(stream.next_target().unwrap().target, targets[1]);
        assert_eq!(stream.next_target().unwrap().window, 1);
    }

    #[test]
    fn slices_partition_the_full_stream() {
        let generator = TargetGenerator::new(5);
        let candidates = [p("2001:db8:1::/48")];
        for producers in [1usize, 2, 3, 5, 8] {
            let mut full = TargetStream::new(&generator, &candidates, 56, 77, true);
            // Two windows of the full stream...
            let want: Vec<_> = (0..512).map(|_| full.next_target().unwrap()).collect();
            // ...must equal the union of every strided slice, reassembled in
            // (window, seq) order.
            let mut slices: Vec<_> = (0..producers)
                .map(|k| {
                    TargetStream::new(&generator, &candidates, 56, 77, true).slice(k, producers)
                })
                .collect();
            assert_eq!(slices.iter().map(|s| s.slice_len()).sum::<usize>(), 256);
            let mut got = Vec::new();
            for (k, slice) in slices.iter_mut().enumerate() {
                for _ in 0..2 * slice.slice_len() {
                    let t = slice.next_target().unwrap();
                    // Producer k owns exactly the positions ≡ k (mod P).
                    assert_eq!(t.seq as usize % producers, k);
                    got.push(t);
                }
            }
            got.sort_by_key(|t| (t.window, t.seq));
            assert_eq!(got, want, "producers={producers}");
        }
    }

    #[test]
    fn target_at_is_slice_independent_and_window_invariant() {
        let generator = TargetGenerator::new(5);
        let candidates = [p("2001:db8:1::/48")];
        let full = TargetStream::new(&generator, &candidates, 56, 77, true);
        let sliced = TargetStream::new(&generator, &candidates, 56, 77, true).slice(1, 3);
        let mut drawn = TargetStream::new(&generator, &candidates, 56, 77, true);
        for pos in 0..full.window_len() {
            assert_eq!(full.target_at(pos), sliced.target_at(pos));
            assert_eq!(drawn.next_target().unwrap().target, full.target_at(pos));
        }
        // Window 1 revisits the same positions in the same order.
        for pos in 0..full.window_len() {
            assert_eq!(drawn.next_target().unwrap().target, full.target_at(pos));
        }
    }

    #[test]
    fn starting_at_window_rebases_numbering_and_composes_with_slices() {
        let generator = TargetGenerator::new(5);
        let candidates = [p("2001:db8:1::/48")];
        let mut rebased =
            TargetStream::new(&generator, &candidates, 56, 77, true).starting_at_window(6);
        assert_eq!(rebased.current_window(), 6);
        let first: Vec<_> = (0..256).map(|_| rebased.next_target().unwrap()).collect();
        assert!(first.iter().all(|t| t.window == 6));
        assert_eq!(rebased.current_window(), 7);
        // Targets and seq are identical to an un-rebased stream's.
        let mut plain = TargetStream::new(&generator, &candidates, 56, 77, true);
        for t in &first {
            let want = plain.next_target().unwrap();
            assert_eq!((t.seq, t.target), (want.seq, want.target));
        }
        // Slices of a rebased stream partition it exactly like window 0's.
        let mut sliced = TargetStream::new(&generator, &candidates, 56, 77, true)
            .starting_at_window(6)
            .slice(1, 3);
        let t = sliced.next_target().unwrap();
        assert_eq!((t.window, t.seq), (6, 1));
    }

    #[test]
    #[should_panic(expected = "rebase a fresh stream")]
    fn starting_at_window_rejects_a_drawn_stream() {
        let generator = TargetGenerator::new(5);
        let candidates = [p("2001:db8:1::/48")];
        let mut stream = TargetStream::new(&generator, &candidates, 56, 77, true);
        stream.next_target().unwrap();
        let _ = stream.starting_at_window(3);
    }

    #[test]
    fn slice_bounds_cover_without_overlap() {
        for n in [0usize, 1, 7, 256, 1000] {
            for producers in 1..=9 {
                let mut next = 0;
                for k in 0..producers {
                    let (lo, hi) = slice_bounds(n, k, producers);
                    assert_eq!(lo, next, "n={n} P={producers} k={k}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn checkpoint_parts_resume_a_drawn_stream_mid_window() {
        let generator = TargetGenerator::new(5);
        let candidates = [p("2001:db8:1::/48")];
        let mut stream = TargetStream::new(&generator, &candidates, 56, 77, true).slice(1, 3);
        for _ in 0..100 {
            stream.next_target().unwrap();
        }
        let (targets, order, window, base_window, pos, offset, step) = stream.checkpoint_parts();
        let mut restored = TargetStream::from_checkpoint_parts(
            targets.to_vec(),
            order.to_vec(),
            window,
            base_window,
            pos,
            offset,
            step,
        );
        for i in 0..300 {
            assert_eq!(restored.next_target(), stream.next_target(), "draw {i}");
        }
    }

    #[test]
    fn per_candidate_48_clamps_granularity() {
        let generator = TargetGenerator::new(9);
        // Granularity shorter than the candidate itself is clamped to the
        // candidate length (one probe).
        let targets = generator.per_candidate_48(&[p("2001:db8:5::/48")], 40);
        assert_eq!(targets.len(), 1);
        let targets = generator.per_candidate_48(&[p("2001:db8:5::/48")], 56);
        assert_eq!(targets.len(), 256);
    }
}

//! Target address generation.
//!
//! The methodology never probes addresses it expects to exist: it probes one
//! *pseudo-random* IID inside each subnet of interest and relies on the CPE's
//! ICMPv6 error to reveal the periphery (§3.1). Target generators therefore
//! produce "one random address per subnet at granularity G" lists for
//! prefixes, rotation pools and candidate /48s.

use std::net::Ipv6Addr;

use scent_ipv6::Ipv6Prefix;
use scent_simnet::det::{hash2, hash3};

/// Deterministic target generation keyed on a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetGenerator {
    seed: u64,
}

impl TargetGenerator {
    /// Create a generator. All addresses produced are pure functions of the
    /// seed and the subnet they fall in, so re-generating a target list for a
    /// later scan reproduces the exact same addresses (as the paper does by
    /// reusing the zmap seed across daily scans).
    pub fn new(seed: u64) -> Self {
        TargetGenerator { seed }
    }

    /// A pseudo-random address inside `prefix` (host bits drawn from the
    /// seed, network bits preserved).
    pub fn random_addr_in(&self, prefix: &Ipv6Prefix) -> Ipv6Addr {
        let h1 = hash3(
            self.seed,
            prefix.network_bits() as u64,
            (prefix.network_bits() >> 64) as u64,
            prefix.len() as u64,
        );
        let h2 = hash2(self.seed, h1, 0x7467_656e); // "tgen"
        let host = ((h1 as u128) << 64) | h2 as u128;
        prefix.addr_with_host_bits(host)
    }

    /// One pseudo-random target per subnet of length `sub_len` inside
    /// `prefix`, in subnet order.
    ///
    /// This is the core workload shape of the paper: one probe per /64 of a
    /// candidate /48 (§4.3), one probe per /56 for density inference (§4.2),
    /// one probe per inferred customer allocation for tracking (§6).
    pub fn one_per_subnet(&self, prefix: &Ipv6Prefix, sub_len: u8) -> Vec<Ipv6Addr> {
        let count = prefix
            .num_subnets(sub_len)
            .expect("sub_len not shorter than prefix");
        let mut targets = Vec::with_capacity(count.min(1 << 24) as usize);
        for sub in prefix.subnets(sub_len).expect("validated above") {
            targets.push(self.random_addr_in(&sub));
        }
        targets
    }

    /// One target per allocation-sized block across each of several pools —
    /// the tracking workload of §6: "we chose a target in each allocation
    /// size block throughout the entire pool".
    pub fn per_allocation(&self, pools: &[Ipv6Prefix], allocation_len: u8) -> Vec<Ipv6Addr> {
        let mut targets = Vec::new();
        for pool in pools {
            targets.extend(self.one_per_subnet(pool, allocation_len.max(pool.len())));
        }
        targets
    }

    /// Targets for a whole list of /48 candidates at a given granularity.
    pub fn per_candidate_48(&self, candidates: &[Ipv6Prefix], granularity: u8) -> Vec<Ipv6Addr> {
        let mut targets = Vec::new();
        for candidate in candidates {
            targets.extend(self.one_per_subnet(candidate, granularity.max(candidate.len())));
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn random_addr_is_inside_and_deterministic() {
        let generator = TargetGenerator::new(42);
        let prefix = p("2001:db8:1:2::/64");
        let a = generator.random_addr_in(&prefix);
        let b = generator.random_addr_in(&prefix);
        assert_eq!(a, b);
        assert!(prefix.contains(a));
        let other = TargetGenerator::new(43).random_addr_in(&prefix);
        assert_ne!(a, other);
        // Different subnets produce different host bits (not just different
        // networks), since the subnet is part of the hash input.
        let c = generator.random_addr_in(&p("2001:db8:1:3::/64"));
        assert_ne!(
            scent_ipv6::interface_id(a),
            scent_ipv6::interface_id(c),
            "host bits should vary across subnets"
        );
    }

    #[test]
    fn one_per_subnet_counts_and_membership() {
        let generator = TargetGenerator::new(1);
        let prefix = p("2001:db8::/56");
        let targets = generator.one_per_subnet(&prefix, 64);
        assert_eq!(targets.len(), 256);
        let mut subnets = HashSet::new();
        for t in &targets {
            assert!(prefix.contains(*t));
            subnets.insert(Ipv6Prefix::enclosing_64(*t));
        }
        // Exactly one target per /64.
        assert_eq!(subnets.len(), 256);
    }

    #[test]
    fn one_per_subnet_same_length_is_single_target() {
        let generator = TargetGenerator::new(1);
        let prefix = p("2001:db8::/64");
        let targets = generator.one_per_subnet(&prefix, 64);
        assert_eq!(targets.len(), 1);
        assert!(prefix.contains(targets[0]));
    }

    #[test]
    fn per_allocation_covers_all_pools() {
        let generator = TargetGenerator::new(9);
        let pools = [p("2001:db8:100::/46"), p("2001:db8:200::/46")];
        let targets = generator.per_allocation(&pools, 56);
        // 2^(56-46) = 1024 per pool.
        assert_eq!(targets.len(), 2048);
        assert!(targets[..1024].iter().all(|t| pools[0].contains(*t)));
        assert!(targets[1024..].iter().all(|t| pools[1].contains(*t)));
    }

    #[test]
    fn per_candidate_48_clamps_granularity() {
        let generator = TargetGenerator::new(9);
        // Granularity shorter than the candidate itself is clamped to the
        // candidate length (one probe).
        let targets = generator.per_candidate_48(&[p("2001:db8:5::/48")], 40);
        assert_eq!(targets.len(), 1);
        let targets = generator.per_candidate_48(&[p("2001:db8:5::/48")], 56);
        assert_eq!(targets.len(), 256);
    }
}

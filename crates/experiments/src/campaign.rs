//! Shared campaign machinery for the experiment harnesses.

use scent_core::{AllocationInference, RotationPoolInference};
use scent_prober::{Campaign, Scan, Scanner, TargetGenerator};
use scent_simnet::{scenarios, Engine, SimTime, WorldScale};

/// Which world scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The default experiment scale: 1/16 of the paper's per-AS /48 counts.
    Experiment,
    /// A much smaller world for CI, tests and benches.
    Small,
}

impl Scale {
    /// Read the scale from the `SCENT_SCALE` environment variable
    /// (`small` → [`Scale::Small`], anything else → [`Scale::Experiment`]).
    pub fn from_env() -> Self {
        match std::env::var("SCENT_SCALE").as_deref() {
            Ok("small") | Ok("SMALL") => Scale::Small,
            _ => Scale::Experiment,
        }
    }

    /// The corresponding simulator scale.
    pub fn world_scale(self) -> WorldScale {
        match self {
            Scale::Experiment => WorldScale::experiment(),
            Scale::Small => WorldScale::small(),
        }
    }

    /// Campaign length in days (paper: 44). Overridable via `SCENT_DAYS`.
    pub fn campaign_days(self) -> u64 {
        if let Ok(days) = std::env::var("SCENT_DAYS") {
            if let Ok(days) = days.parse::<u64>() {
                return days.clamp(2, 60);
            }
        }
        match self {
            Scale::Experiment => 14,
            Scale::Small => 8,
        }
    }
}

/// The seed used by every experiment world, so independent experiment
/// binaries observe the same simulated Internet.
pub const WORLD_SEED: u64 = 0x0005_ce47;

/// A daily campaign over the Internet-wide world plus the inferences the
/// analyses need — the common substrate of Table 1, Figures 4, 5, 7, 8 and
/// the §5 totals.
pub struct CampaignData {
    /// The simulated Internet.
    pub engine: Engine,
    /// One scan per campaign day.
    pub scans: Vec<Scan>,
    /// Algorithm 1 output (from a single-day finer-granularity scan).
    pub allocation: AllocationInference,
    /// Algorithm 2 output (from the daily campaign).
    pub pools: RotationPoolInference,
}

impl CampaignData {
    /// Run the campaign at the given scale.
    ///
    /// Workload note: the paper's campaign probes one target per /64 of every
    /// monitored /48 (844M probes/day). At reproduction scale we generate one
    /// target per customer-allocation block per pool, capped at /60
    /// granularity for /64-allocating pools, which preserves which devices
    /// are observable while keeping daily probe counts tractable. The
    /// allocation-size inference runs on a separate single-day scan at /64
    /// granularity over a sample of /48s, as Algorithm 1 requires
    /// within-allocation target diversity.
    pub fn collect(scale: Scale) -> Self {
        let engine = Engine::build(scenarios::paper_world(WORLD_SEED, scale.world_scale()))
            .unwrap_or_else(|error| panic!("paper world must build: {error}"));
        let generator = TargetGenerator::new(WORLD_SEED ^ 0xca);

        // Daily-campaign targets: one per allocation block (≥ /60).
        let mut daily_targets = Vec::new();
        for pool in engine.pools() {
            let granularity = pool.config.allocation_len.min(60);
            daily_targets.extend(generator.one_per_subnet(&pool.config.prefix, granularity));
        }
        let scanner = Scanner::at_paper_rate(WORLD_SEED ^ 0x5ca);
        let days = scale.campaign_days();
        let campaign =
            Campaign::daily(&scanner, &engine, &daily_targets, SimTime::at(100, 9), days);

        // Allocation-inference scan: /64 granularity over one /48 per pool
        // (bounded), on a single day.
        let mut alloc_targets = Vec::new();
        for pool in engine.pools() {
            let first_48 = scent_ipv6::Ipv6Prefix::from_bits(
                pool.config.prefix.network_bits(),
                pool.config.prefix.len().max(48),
            )
            .expect("valid /48");
            alloc_targets.extend(generator.one_per_subnet(&first_48, 64));
        }
        let alloc_scan = scanner.scan(&engine, &alloc_targets, SimTime::at(99, 9));
        let allocation = AllocationInference::infer(&[&alloc_scan], engine.rib());

        let refs: Vec<&Scan> = campaign.scans.iter().collect();
        let pools = RotationPoolInference::infer(&refs, engine.rib());

        CampaignData {
            engine,
            scans: campaign.scans,
            allocation,
            pools,
        }
    }

    /// Borrow the scans as references (the shape the analyses expect).
    pub fn scan_refs(&self) -> Vec<&Scan> {
        self.scans.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_collects_and_infers() {
        let data = CampaignData::collect(Scale::Small);
        assert!(data.scans.len() >= 2);
        assert!(data.scans[0].eui64_responses() > 0);
        assert!(!data.allocation.per_as.is_empty());
        assert!(!data.pools.per_as.is_empty());
        // Versatel rotates and is detected as such.
        assert!(data.pools.rotates(scent_core::Asn(8881)));
    }

    #[test]
    fn scale_env_parsing() {
        assert_eq!(Scale::Experiment.world_scale(), WorldScale::experiment());
        assert_eq!(Scale::Small.world_scale(), WorldScale::small());
        assert!(Scale::Small.campaign_days() >= 2);
    }
}

//! Runs every table/figure experiment in sequence and prints each report.
//! Set SCENT_SCALE=small and/or SCENT_DAYS=N to bound the runtime.
fn main() {
    for (name, runner) in scent_experiments::all_experiments() {
        println!("================ {name} ================");
        println!("{}", runner());
    }
}

//! Regenerates the paper's campaign_totals output; see EXPERIMENTS.md for the
//! paper-vs-measured comparison. Set SCENT_SCALE=small for a quick run.
fn main() {
    println!("{}", scent_experiments::tables::run_campaign_totals());
}

//! Regenerates the paper's fig8 output; see EXPERIMENTS.md for the
//! paper-vs-measured comparison. Set SCENT_SCALE=small for a quick run.
fn main() {
    println!("{}", scent_experiments::figures::run_fig8());
}

//! Regenerates the paper's pipeline_counts output; see EXPERIMENTS.md for the
//! paper-vs-measured comparison. Set SCENT_SCALE=small for a quick run.
fn main() {
    println!("{}", scent_experiments::tables::run_pipeline_counts());
}

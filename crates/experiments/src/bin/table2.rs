//! Regenerates the paper's table2 output; see EXPERIMENTS.md for the
//! paper-vs-measured comparison. Set SCENT_SCALE=small for a quick run.
fn main() {
    println!("{}", scent_experiments::tables::run_table2());
}

//! Experiment harnesses reproducing every table and figure of the paper's
//! evaluation.
//!
//! Each public `run_*` function builds the appropriate simulated world, runs
//! the measurement methodology against it, and returns a plain-text report
//! whose rows/series correspond to the paper's table or figure. The
//! `src/bin/` binaries are thin wrappers that print these reports;
//! `run_all` executes every experiment in sequence. EXPERIMENTS.md in the
//! repository root records the paper-reported values next to the values
//! these harnesses produce.
//!
//! Scale: experiments default to [`Scale::Experiment`] (1/16 of the paper's
//! /48 counts). Set the environment variable `SCENT_SCALE=small` for a much
//! faster, smaller run (used by CI and the benches), and `SCENT_DAYS` to
//! override the campaign length (default 14 days, paper: 44).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod figures;
pub mod tables;

pub use campaign::{CampaignData, Scale};

/// One experiment: its name and the runner producing its plain-text report.
pub type NamedExperiment = (&'static str, fn() -> String);

/// Every experiment, as `(name, runner)` pairs, in the order `run_all`
/// executes them.
pub fn all_experiments() -> Vec<NamedExperiment> {
    vec![
        ("table1", tables::run_table1 as fn() -> String),
        ("table2", tables::run_table2),
        ("pipeline_counts", tables::run_pipeline_counts),
        ("campaign_totals", tables::run_campaign_totals),
        ("fig3", figures::run_fig3),
        ("fig4", figures::run_fig4),
        ("fig5", figures::run_fig5),
        ("fig6", figures::run_fig6),
        ("fig7", figures::run_fig7),
        ("fig8", figures::run_fig8),
        ("fig9", figures::run_fig9),
        ("fig10", figures::run_fig10),
        ("fig11", figures::run_fig11),
        ("fig12", figures::run_fig12),
        ("fig13", figures::run_fig13),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        // Two tables, eleven figures (3–13), and the two prose-count
        // experiments.
        assert_eq!(names.len(), 15);
        for figure in 3..=13 {
            assert!(names.contains(&format!("fig{figure}").as_str()));
        }
        assert!(names.contains(&"table1"));
        assert!(names.contains(&"table2"));
    }
}

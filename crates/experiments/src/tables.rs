//! Table experiments: Table 1, Table 2 and the §4/§5 prose counts.

use std::collections::HashSet;

use scent_core::report::TextTable;
use scent_core::{CampaignStats, Pipeline, PipelineConfig, Tracker, TrackerConfig};
use scent_simnet::{scenarios, Engine};

use crate::campaign::{CampaignData, Scale, WORLD_SEED};

/// Table 1: top ASNs and countries by number of rotating /48 prefixes,
/// produced by the full §4 discovery pipeline.
pub fn run_table1() -> String {
    let scale = Scale::from_env();
    let engine = Engine::build(scenarios::paper_world(WORLD_SEED, scale.world_scale()))
        .unwrap_or_else(|error| panic!("paper world must build: {error}"));
    let report = Pipeline::new(PipelineConfig::default()).run(&engine);

    let mut out = String::new();
    out.push_str("Table 1: Top ASNs and countries by number of rotating /48 prefixes\n");
    out.push_str(
        "(paper: 12,885 rotating /48s across >100 ASes in 25 countries; scaled world)\n\n",
    );
    let mut asn_table = TextTable::new(["ASN", "# /48"]);
    for (asn, count) in report.rotating_counts.per_asn.iter().take(5) {
        asn_table.row([asn.value().to_string(), count.to_string()]);
    }
    let shown: u64 = report
        .rotating_counts
        .per_asn
        .iter()
        .take(5)
        .map(|(_, c)| c)
        .sum();
    asn_table.row([
        format!(
            "{} other ASNs",
            report.rotating_counts.per_asn.len().saturating_sub(5)
        ),
        (report.rotating_counts.total - shown).to_string(),
    ]);
    asn_table.row([
        "Total".to_string(),
        report.rotating_counts.total.to_string(),
    ]);
    out.push_str(&asn_table.render());

    out.push('\n');
    let mut cc_table = TextTable::new(["Country", "# /48"]);
    for (country, count) in report.rotating_counts.per_country.iter().take(5) {
        cc_table.row([country.to_string(), count.to_string()]);
    }
    let shown: u64 = report
        .rotating_counts
        .per_country
        .iter()
        .take(5)
        .map(|(_, c)| c)
        .sum();
    cc_table.row([
        format!(
            "{} other countries",
            report.rotating_counts.per_country.len().saturating_sub(5)
        ),
        (report.rotating_counts.total - shown).to_string(),
    ]);
    cc_table.row([
        "Total".to_string(),
        report.rotating_counts.total.to_string(),
    ]);
    out.push_str(&cc_table.render());
    out.push_str(&format!(
        "\nrotating ASes: {} (paper: >100)   rotating countries: {} (paper: 25)\n",
        report.rotating_ases, report.rotating_countries
    ));
    out
}

/// The §4 prose counts: seed /48s, validated /48s, density classes, rotating
/// /48s, and address/IID totals of the detection phase.
pub fn run_pipeline_counts() -> String {
    let scale = Scale::from_env();
    let engine = Engine::build(scenarios::paper_world(WORLD_SEED, scale.world_scale()))
        .unwrap_or_else(|error| panic!("paper world must build: {error}"));
    let report = Pipeline::new(PipelineConfig::default()).run(&engine);

    let mut table = TextTable::new(["quantity", "measured", "paper"]);
    table.row([
        "seed /48s (unique EUI-64 last hop)".to_string(),
        report.seed_unique_48s.to_string(),
        "32,325".into(),
    ]);
    table.row([
        "seed /32s".to_string(),
        report.seed_32s.to_string(),
        "938".into(),
    ]);
    table.row([
        "validated /48s (EUI-64 response)".to_string(),
        report.validated_48s.to_string(),
        "48,970".into(),
    ]);
    table.row([
        "high-density /48s".to_string(),
        report.high_density.to_string(),
        "17,513".into(),
    ]);
    table.row([
        "low-density /48s".to_string(),
        report.low_density.to_string(),
        "27,429".into(),
    ]);
    table.row([
        "unresponsive candidates".to_string(),
        report.no_response.to_string(),
        "4,028".into(),
    ]);
    table.row([
        "rotating /48s".to_string(),
        report.rotating_counts.total.to_string(),
        "12,885".into(),
    ]);
    table.row([
        "total addresses (detection phase)".to_string(),
        report.total_addresses.to_string(),
        "19.4M".into(),
    ]);
    table.row([
        "EUI-64 addresses".to_string(),
        report.eui64_addresses.to_string(),
        "14.8M".into(),
    ]);
    table.row([
        "unique EUI-64 IIDs".to_string(),
        report.unique_iids.to_string(),
        "6.2M".into(),
    ]);
    format!(
        "Pipeline counts (§4) — absolute values scale with the world divisor; ratios are comparable\n\n{}",
        table.render()
    )
}

/// The §5 campaign totals: probes, responses, unique addresses, unique EUI-64
/// addresses and unique IIDs over the multi-week daily campaign.
pub fn run_campaign_totals() -> String {
    let data = CampaignData::collect(Scale::from_env());
    let stats = CampaignStats::compute(&data.scan_refs());
    let mut table = TextTable::new(["quantity", "measured", "paper"]);
    table.row([
        "campaign days".to_string(),
        data.scans.len().to_string(),
        "44".into(),
    ]);
    table.row([
        "probes sent".to_string(),
        stats.probes_sent.to_string(),
        "37B".into(),
    ]);
    table.row([
        "responses".to_string(),
        stats.responses.to_string(),
        "24B".into(),
    ]);
    table.row([
        "unique addresses".to_string(),
        stats.unique_addresses.to_string(),
        "134M".into(),
    ]);
    table.row([
        "unique EUI-64 addresses".to_string(),
        stats.unique_eui64_addresses.to_string(),
        "110M".into(),
    ]);
    table.row([
        "unique EUI-64 IIDs".to_string(),
        stats.unique_iids.to_string(),
        "9M".into(),
    ]);
    table.row([
        "EUI-64 addresses per IID".to_string(),
        format!("{:.1}", stats.addresses_per_iid()),
        "~12".into(),
    ]);
    table.row([
        "IIDs seen in >1 /64".to_string(),
        scent_core::report::percent(stats.fraction_multi_prefix()),
        "~70%".into(),
    ]);
    format!("Campaign totals (§5)\n\n{}", table.render())
}

/// Table 2 and the underlying tracking experiment: ten devices tracked for a
/// week using the inferred allocation and rotation-pool sizes.
pub fn run_table2() -> String {
    let (report, _report_random) = tracking_reports();
    let mut table = TextTable::new([
        "EUI-64 IID",
        "Mean probes",
        "StdDev",
        "BGP prefix",
        "ASN",
        "CC",
        "# Days",
        "# /64s",
    ]);
    for (i, device) in report.devices.iter().enumerate() {
        let (mean, std) = device.probe_stats();
        table.row([
            format!("#{}", i + 1),
            format!("{mean:.1}"),
            format!("{std:.1}"),
            device
                .device
                .bgp_prefix_len
                .map(|l| format!("/{l}"))
                .unwrap_or_else(|| "?".into()),
            device.device.asn.value().to_string(),
            device
                .device
                .country
                .map(|c| c.to_string())
                .unwrap_or_else(|| "??".into()),
            device.days_found().to_string(),
            device.distinct_prefixes().to_string(),
        ]);
    }
    format!(
        "Table 2: characteristics of prefix-changing EUI-64 IIDs tracked over one week\n\n{}\noverall re-identification accuracy: {} (paper: 60–90%)\n",
        table.render(),
        scent_core::report::percent(report.overall_accuracy()),
    )
}

/// Run the two §6 tracking experiments: ten devices chosen among
/// known-rotators (Table 2 / Figure 13b) and ten chosen at random
/// (Figure 13a). Shared by `table2` and `fig13`.
pub fn tracking_reports() -> (scent_core::TrackingReport, scent_core::TrackingReport) {
    let data = CampaignData::collect(Scale::from_env());
    let tracker = Tracker::new(TrackerConfig::default());
    // Exclude multi-AS identifiers (§5.5 pathologies), as the paper does.
    let pathology = scent_core::PathologyReport::analyse(&data.scan_refs(), data.engine.rib());
    let multi_as: HashSet<_> = pathology.multi_as.keys().copied().collect();
    let start_day = data
        .scans
        .last()
        .map(|s| s.started_at.day() + 1)
        .unwrap_or(120);

    let rotating = tracker.select_devices(
        &data.allocation,
        &data.pools,
        data.engine.rib(),
        data.engine.as_registry(),
        &multi_as,
        10,
        true,
    );
    let rotating_report = tracker.track(&data.engine, &rotating, start_day, 7);

    let random = tracker.select_devices(
        &data.allocation,
        &data.pools,
        data.engine.rib(),
        data.engine.as_registry(),
        &multi_as,
        10,
        false,
    );
    let random_report = tracker.track(&data.engine, &random, start_day, 7);
    (rotating_report, random_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_small_scale<T>(f: impl FnOnce() -> T) -> T {
        // The experiment binaries read SCENT_SCALE; tests force the small
        // world regardless of the ambient environment.
        std::env::set_var("SCENT_SCALE", "small");
        std::env::set_var("SCENT_DAYS", "6");
        f()
    }

    #[test]
    fn table1_output_mentions_versatel_and_totals() {
        let output = with_small_scale(run_table1);
        assert!(output.contains("Table 1"));
        assert!(output.contains("8881"));
        assert!(output.contains("Total"));
        assert!(output.contains("rotating ASes"));
    }

    #[test]
    fn table2_and_tracking_accuracy() {
        let output = with_small_scale(run_table2);
        assert!(output.contains("Table 2"));
        assert!(output.contains("re-identification accuracy"));
        assert!(output.contains("ASN"));
    }

    #[test]
    fn pipeline_and_campaign_counts_render() {
        let counts = with_small_scale(run_pipeline_counts);
        assert!(counts.contains("rotating /48s"));
        assert!(counts.contains("unique EUI-64 IIDs"));
        let totals = with_small_scale(run_campaign_totals);
        assert!(totals.contains("Campaign totals"));
        assert!(totals.contains("IIDs seen in >1 /64"));
    }
}

//! Figure experiments: Figures 3 through 13.

use scent_core::report::{cdf_series, percent, TextTable};
use scent_core::{
    dynamics::{IidTrajectories, PoolDensityTimeline},
    AllocationGrid, CampaignStats, Eui64, HomogeneityReport, PathologyReport,
};
use scent_oui::builtin_registry;
use scent_prober::{Campaign, Scanner, TargetGenerator};
use scent_simnet::{scenarios, Engine, SimDuration, SimTime};

use crate::campaign::{CampaignData, Scale, WORLD_SEED};
use crate::tables::tracking_reports;

fn grid_summary(label: &str, engine: &Engine, prefix: scent_ipv6::Ipv6Prefix) -> String {
    let grid = AllocationGrid::probe(engine, prefix, SimTime::at(1, 10), WORLD_SEED);
    format!(
        "{label}: {prefix}\n  inferred allocation: {}   distinct responders: {}   unresponsive: {}\n",
        grid.infer_allocation_len()
            .map(|l| format!("/{l}"))
            .unwrap_or_else(|| "?".into()),
        grid.distinct_sources(),
        percent(grid.unresponsive_fraction()),
    )
}

/// Figure 3: allocation grids for an Entel-like (/56), BH-Telecom-like (/60)
/// and Starcat-like (/64) provider.
pub fn run_fig3() -> String {
    let mut out = String::from(
        "Figure 3: per-/48 allocation grids (paper: Entel /56, BH Telecom /60, Starcat /64)\n\n",
    );
    let entel = Engine::build(scenarios::entel_like(WORLD_SEED)).unwrap();
    out.push_str(&grid_summary(
        "Entel-like (BO)",
        &entel,
        entel.pools()[0].config.prefix,
    ));
    let bh = Engine::build(scenarios::bhtelecom_like(WORLD_SEED)).unwrap();
    out.push_str(&grid_summary(
        "BH-Telecom-like (BA)",
        &bh,
        bh.pools()[0].config.prefix,
    ));
    let starcat = Engine::build(scenarios::starcat_like(WORLD_SEED)).unwrap();
    out.push_str(&grid_summary(
        "Starcat-like (JP)",
        &starcat,
        "2400:d800:300::/48".parse().unwrap(),
    ));
    out
}

/// Figure 6: one provider (Versatel-like) with two different allocation plans
/// in different /48s.
pub fn run_fig6() -> String {
    let engine = Engine::build(scenarios::versatel_like(WORLD_SEED)).unwrap();
    let pool64 = engine
        .pools()
        .iter()
        .find(|p| p.config.allocation_len == 64)
        .unwrap()
        .config
        .prefix;
    let pool56 = engine
        .pools()
        .iter()
        .find(|p| p.config.allocation_len == 56)
        .unwrap()
        .config
        .prefix;
    let first_48 = |p: scent_ipv6::Ipv6Prefix| {
        scent_ipv6::Ipv6Prefix::from_bits(p.network_bits(), 48).unwrap()
    };
    let mut out = String::from(
        "Figure 6: one provider (AS8881) with /64 and /56 allocation plans in different /48s\n\n",
    );
    out.push_str(&grid_summary("Versatel pool A", &engine, first_48(pool64)));
    out.push_str(&grid_summary("Versatel pool B", &engine, first_48(pool56)));
    out
}

/// Figure 4: CDF of per-AS CPE manufacturer homogeneity.
pub fn run_fig4() -> String {
    let data = CampaignData::collect(Scale::from_env());
    let min_iids = match Scale::from_env() {
        Scale::Experiment => 100,
        Scale::Small => 20,
    };
    let report = HomogeneityReport::analyse(
        &data.scan_refs(),
        data.engine.rib(),
        &builtin_registry(),
        min_iids,
    );
    let cdf = report.cdf();
    format!(
        "Figure 4: per-AS manufacturer homogeneity CDF\n\
         ASes included: {} (paper: 87)   distinct manufacturers: {} (paper: >200)\n\
         fraction of ASes >0.9: {} (paper: >50%)   >0.67: {} (paper: ~75%)\n\
         CDF: {}\n",
        report.per_as.len(),
        report.total_manufacturers,
        percent(report.fraction_above(0.9)),
        percent(report.fraction_above(0.67)),
        cdf_series(&cdf.steps()),
    )
}

/// Figure 5: CDFs of inferred allocation size per EUI-64 IID (a) and per AS (b).
pub fn run_fig5() -> String {
    let data = CampaignData::collect(Scale::from_env());
    let iid_cdf =
        scent_core::Cdf::from_samples(data.allocation.iid_sizes().iter().map(|&s| s as f64));
    let as_cdf =
        scent_core::Cdf::from_samples(data.allocation.as_sizes().iter().map(|&s| s as f64));
    format!(
        "Figure 5a: inferred allocation size CDF over EUI-64 IIDs ({} IIDs)\n  {}\n\
         paper: ~40% /56, ~30% /64, inflection at /60\n\n\
         Figure 5b: median inferred allocation size CDF over ASes ({} ASes)\n  {}\n\
         paper: ~50% of ASes /56, ~25% /64\n",
        iid_cdf.len(),
        cdf_series(&iid_cdf.steps()),
        as_cdf.len(),
        cdf_series(&as_cdf.steps()),
    )
}

/// Figure 7: inferred rotation-pool sizes versus encompassing BGP prefix
/// sizes, as CDFs over ASes.
pub fn run_fig7() -> String {
    let data = CampaignData::collect(Scale::from_env());
    let (pool_cdf, bgp_cdf) = CampaignStats::pool_vs_bgp_cdfs(&data.scan_refs(), data.engine.rib());
    let reduction = data.pools.median_search_space_reduction_bits().unwrap_or(0);
    format!(
        "Figure 7: inferred rotation pool size vs encompassing BGP prefix size (CDF over ASes)\n\
         rotation pool CDF: {}\n\
         BGP prefix  CDF: {}\n\
         median search-space reduction: {} bits (paper: ≈16 bits — devices stay within 1/2^16 of the announcement)\n\
         ASes with pool /64 (no observed rotation): {} of {} (paper: just over half)\n",
        cdf_series(&pool_cdf.steps()),
        cdf_series(&bgp_cdf.steps()),
        reduction,
        data.pools.as_pool_sizes().iter().filter(|&&l| l == 64).count(),
        data.pools.per_as.len(),
    )
}

/// Figure 8: CDF of the number of distinct /64 prefixes per EUI-64 IID.
pub fn run_fig8() -> String {
    let data = CampaignData::collect(Scale::from_env());
    let stats = CampaignStats::compute(&data.scan_refs());
    let cdf = stats.prefixes_per_iid_cdf();
    format!(
        "Figure 8: distinct /64 prefixes per EUI-64 IID (CDF over {} IIDs)\n\
         CDF: {}\n\
         fraction in exactly one /64: {} (paper: ~25%)\n\
         fraction in more than one /64: {} (paper: ~70%)\n\
         maximum observed: {}\n",
        stats.unique_iids,
        cdf_series(&cdf.steps()),
        percent(1.0 - stats.fraction_multi_prefix()),
        percent(stats.fraction_multi_prefix()),
        stats.prefixes_per_iid.values().copied().max().unwrap_or(0),
    )
}

/// Figure 9: three AS8881 identifiers' delegated /64 prefix over time
/// (incrementing daily modulo the /46 pool).
pub fn run_fig9() -> String {
    let engine = Engine::build(scenarios::versatel_like(WORLD_SEED)).unwrap();
    let pool = engine
        .pools()
        .iter()
        .find(|p| p.config.allocation_len == 56)
        .unwrap()
        .config
        .prefix;
    let targets = TargetGenerator::new(WORLD_SEED).one_per_subnet(&pool, 56);
    let scanner = Scanner::at_paper_rate(WORLD_SEED);
    let days = Scale::from_env().campaign_days().max(10);
    let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 9), days);
    let refs: Vec<_> = campaign.scans.iter().collect();
    let trajectories = IidTrajectories::extract(&refs, &[]);
    let best = trajectories.best_observed(3);

    let mut out = format!(
        "Figure 9: daily /64 prefix of three AS8881 EUI-64 IIDs over {days} days (pool {pool})\n\n"
    );
    for (i, eui) in best.iter().enumerate() {
        let trajectory = trajectories.for_iid(*eui).unwrap();
        let series: Vec<String> = trajectory
            .iter()
            .map(|obs| {
                format!(
                    "d{}:{}",
                    obs.at.day(),
                    pool.subnet_index(&obs.prefix64).unwrap_or_default()
                )
            })
            .collect();
        out.push_str(&format!(
            "IID #{} ({eui}): monotone-mod-pool: {}\n  /64 index in pool by day: {}\n",
            i + 1,
            trajectories
                .is_monotone_modulo(*eui, &pool)
                .unwrap_or(false),
            series.join(" ")
        ));
    }
    out
}

/// Figure 10: hourly EUI-64 density per /48 of an AS8881 /46 rotation pool.
pub fn run_fig10() -> String {
    let engine = Engine::build(scenarios::versatel_like(WORLD_SEED)).unwrap();
    let pool = engine
        .pools()
        .iter()
        .find(|p| p.config.allocation_len == 56)
        .unwrap()
        .config
        .prefix;
    let targets = TargetGenerator::new(WORLD_SEED).one_per_subnet(&pool, 56);
    let scanner = Scanner::at_paper_rate(WORLD_SEED ^ 1);
    let campaign = Campaign::run(
        &scanner,
        &engine,
        &targets,
        SimTime::at(20, 0),
        7 * 24,
        SimDuration::from_hours(1),
    );
    let refs: Vec<_> = campaign.scans.iter().collect();
    let timeline = PoolDensityTimeline::measure(&pool, &refs);
    let mut out = format!(
        "Figure 10: hourly EUI-64 density of the four /48s of {pool} over one week\n\
         (paper: reassignment occurs 00:00–06:00; one /48 dominates at any time)\n\n"
    );
    let mut table = TextTable::new(["time", "/48 #0", "/48 #1", "/48 #2", "/48 #3"]);
    for (t, densities) in timeline.rows.iter().step_by(6) {
        let mut row = vec![t.to_string()];
        row.extend(densities.iter().map(|d| format!("{d:.3}")));
        table.row(row);
    }
    out.push_str(&table.render());
    let hours = timeline.reassignment_hours();
    out.push_str(&format!(
        "\nreassignment (densest /48 changes) observed at hours: {hours:?}\n"
    ));
    out
}

/// Figure 11: a single EUI-64 IID observed in many ASes on several continents
/// (vendor MAC reuse).
pub fn run_fig11() -> String {
    let (world, reused_mac) = scenarios::pathology_mac_reuse(WORLD_SEED);
    let engine = Engine::build(world).unwrap();
    let generator = TargetGenerator::new(WORLD_SEED);
    let mut targets = Vec::new();
    for pool in engine.pools() {
        targets.extend(generator.one_per_subnet(&pool.config.prefix, pool.config.allocation_len));
    }
    let scanner = Scanner::at_paper_rate(WORLD_SEED ^ 2);
    let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 10), 10);
    let refs: Vec<_> = campaign.scans.iter().collect();
    let report = PathologyReport::analyse(&refs, engine.rib());
    let reused = Eui64::from_mac(reused_mac);
    let timeline = &report.multi_as[&reused];
    let mut out = format!(
        "Figure 11: one EUI-64 IID ({reused}) observed per day, by AS\n\
         (paper: the same IID appears daily in ASes on several continents — MAC reuse)\n\n"
    );
    let mut table = TextTable::new(["day", "ASes observed"]);
    for (day, ases) in &timeline.per_day {
        table.row([
            day.to_string(),
            ases.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nIIDs in multiple ASes: {}   flagged as MAC reuse: {}   zero-MAC ASes: {} (paper: 12)\n",
        report.multi_as_count(),
        report.mac_reuse.len(),
        report.zero_mac_ases,
    ));
    out
}

/// Figure 12: two EUI-64 IIDs switching between two German ISPs.
pub fn run_fig12() -> String {
    let (world, [mac_a, mac_b]) = scenarios::pathology_provider_switch(WORLD_SEED, 12, 32);
    let engine = Engine::build(world).unwrap();
    let generator = TargetGenerator::new(WORLD_SEED);
    let mut targets = Vec::new();
    for pool in engine.pools() {
        targets.extend(generator.one_per_subnet(&pool.config.prefix, pool.config.allocation_len));
    }
    let scanner = Scanner::at_paper_rate(WORLD_SEED ^ 3);
    let campaign = Campaign::daily(&scanner, &engine, &targets, SimTime::at(1, 10), 44);
    let refs: Vec<_> = campaign.scans.iter().collect();
    let report = PathologyReport::analyse(&refs, engine.rib());

    let mut out = String::from(
        "Figure 12: two EUI-64 IIDs changing between German ISPs (AS8881 ↔ AS3320)\n\n",
    );
    for (label, mac) in [("A", mac_a), ("B", mac_b)] {
        let iid = Eui64::from_mac(mac);
        match report.provider_switches.get(&iid) {
            Some((from, to, day)) => out.push_str(&format!(
                "device {label} ({iid}): moved {from} -> {to} on day {day}, never seen in {from} again\n"
            )),
            None => out.push_str(&format!("device {label} ({iid}): no switch detected\n")),
        }
    }
    out.push_str(&format!(
        "\nprovider switches detected: {}\n",
        report.provider_switches.len()
    ));
    out
}

/// Figure 13: devices found per day when tracking ten random devices (a) and
/// ten known-rotating devices (b) over a week.
pub fn run_fig13() -> String {
    let (rotating, random) = tracking_reports();
    let mut out = String::from("Figure 13: tracked EUI-64 IIDs found per day over one week\n\n");
    for (label, report, paper) in [
        (
            "13a: ten randomly selected IIDs",
            &random,
            "paper: 9–10 of 10 found daily; rotated count grows 1 → 4",
        ),
        (
            "13b: ten known-rotating IIDs",
            &rotating,
            "paper: 6–8 of 10 found daily; all rotate by day 4",
        ),
    ] {
        out.push_str(&format!("{label} ({paper})\n"));
        let mut table = TextTable::new(["day", "# found", "# in same /64", "# in different /64"]);
        for counts in report.daily_counts() {
            table.row([
                counts.day.to_string(),
                counts.found.to_string(),
                counts.same_prefix.to_string(),
                counts.different_prefix.to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "devices tracked: {}   overall accuracy: {}\n\n",
            report.devices.len(),
            percent(report.overall_accuracy())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() {
        std::env::set_var("SCENT_SCALE", "small");
        std::env::set_var("SCENT_DAYS", "6");
    }

    #[test]
    fn grid_figures_render() {
        small();
        let fig3 = run_fig3();
        assert!(fig3.contains("/56"));
        assert!(fig3.contains("/60"));
        assert!(fig3.contains("/64"));
        let fig6 = run_fig6();
        assert!(fig6.contains("pool A"));
        assert!(fig6.contains("pool B"));
    }

    #[test]
    fn dynamics_and_pathology_figures_render() {
        small();
        let fig9 = run_fig9();
        assert!(fig9.contains("IID #1"));
        assert!(fig9.contains("monotone-mod-pool: true"));
        let fig11 = run_fig11();
        assert!(fig11.contains("MAC reuse"));
        let fig12 = run_fig12();
        assert!(fig12.contains("AS8881 -> AS3320") || fig12.contains("moved"));
    }
}

//! Deterministic telemetry for the followscent streaming engine: typed
//! counters, virtual-time traces and a structured event journal, recorded
//! through the [`StreamObserver`] hook points of `scent-stream`.
//!
//! # Why "deterministic" telemetry
//!
//! The engine's reports are pure functions of (config, world seed) —
//! byte-identical across shard counts, producer counts, thread schedules
//! and live-vs-recorded backends. Telemetry follows the same discipline, or
//! it would be the one part of the system that can't be replayed, diffed or
//! regression-tested. The [`Telemetry`] registry therefore splits its state
//! into three tiers (see [`TelemetrySnapshot`]):
//!
//! * the **deterministic tier** ([`DeterministicSnapshot`]) — workload
//!   counters and the [`TelemetryEvent`] journal, recorded exclusively on
//!   the merge side of the engine in deterministic clock order;
//! * the **topology tier** ([`TopologySnapshot`]) — per-shard and
//!   per-producer breakdowns, deterministic in value but keyed by the
//!   configured topology;
//! * the **wall-clock tier** ([`ProfileSnapshot`]) — OS-time spans, channel
//!   stalls and depth high-water marks, explicitly excluded from
//!   determinism checks.
//!
//! # Usage
//!
//! Build a [`Telemetry`], hand it to the engine (via the `followscent`
//! campaign builder's `.telemetry(..)`, or directly to the `run_observed`
//! entry points of `scent-stream`), then [`Telemetry::snapshot`] it and
//! render with the [exporters](crate::prometheus):
//!
//! ```
//! use scent_telemetry::{StreamObserver, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! // The engine calls the observer hooks; here we stand in for it.
//! telemetry.on_run_start(2, 4);
//! telemetry.on_routed(0, 0, scent_simnet::SimTime::from_secs(7), true);
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.deterministic.observations, 1);
//! assert!(scent_telemetry::prometheus(&snapshot).contains("scent_observations_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod observer;
mod snapshot;

pub use event::{EventKind, TelemetryEvent};
pub use export::{deterministic_text, events_jsonl, profile_text, prometheus, topology_text};
pub use observer::{EpochSummary, NoopObserver, StreamObserver};
pub use snapshot::{
    DeterministicSnapshot, Histogram, ProfileSnapshot, TelemetrySnapshot, TopologySnapshot,
    WindowStats, LATENCY_BOUNDS_SECS,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use scent_simnet::SimTime;

/// The open-window aggregation the registry folds `on_routed` calls into.
#[derive(Debug, Clone)]
struct WindowAgg {
    window: u64,
    observations: u64,
    responses: u64,
    first_send: SimTime,
    last_send: SimTime,
}

/// Merge-side (deterministic + topology) state, guarded by one mutex that
/// only the merge thread contends for.
#[derive(Debug, Clone, Default)]
struct Inner {
    shards: usize,
    producers: usize,
    observations: u64,
    responses: u64,
    routed_per_shard: Vec<u64>,
    ingested_per_shard: Vec<u64>,
    expansion_probes: u64,
    rate_backoffs: u64,
    rate_recoveries: u64,
    queue_high_water: u64,
    epochs_closed: u64,
    admitted: u64,
    evicted: u64,
    /// The epoch id stamped onto new events (the next epoch to close).
    epoch: u64,
    /// The last routed send time, for stamping window-less events.
    last_send: Option<SimTime>,
    open: Option<WindowAgg>,
    windows: Vec<WindowStats>,
    latency: Histogram,
    events: Vec<TelemetryEvent>,
}

impl Inner {
    /// Close the open window aggregation, if any: push its stats, record
    /// its latency and journal a [`EventKind::WindowClose`].
    fn close_open_window(&mut self) {
        let Some(agg) = self.open.take() else { return };
        self.latency
            .observe(agg.last_send.since(agg.first_send).as_secs());
        self.windows.push(WindowStats {
            window: agg.window,
            observations: agg.observations,
            responses: agg.responses,
            first_send: agg.first_send,
            last_send: agg.last_send,
        });
        self.events.push(TelemetryEvent {
            virtual_time: agg.last_send,
            window: agg.window,
            epoch: self.epoch,
            shard: None,
            kind: EventKind::WindowClose {
                observations: agg.observations,
                responses: agg.responses,
                first_send: agg.first_send,
            },
        });
    }
}

/// Recover the data behind a poisoned lock: every update the registry makes
/// is a plain counter or push, so partially-applied state is still usable
/// diagnostics (and the panicking thread's panic propagates regardless).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn grow_slot(values: &mut Vec<u64>, index: usize) -> &mut u64 {
    if values.len() <= index {
        values.resize(index + 1, 0);
    }
    &mut values[index]
}

/// The telemetry registry: one per run.
///
/// Implements [`StreamObserver`]; hand `Some(&telemetry)` to the engine's
/// `run_observed` entry points (or `.telemetry(&telemetry)` on the
/// `followscent` campaign builder), then read the state back with
/// [`Telemetry::snapshot`]. Interior mutability throughout — the engine
/// shares it by reference across producer, router and shard-worker threads.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Mutex<Inner>,
    producer_probes: Mutex<Vec<u64>>,
    ingested_live: Mutex<Vec<u64>>,
    stalls: AtomicU64,
    channel_high_water: AtomicU64,
    wall_spans: Mutex<Vec<(&'static str, u64)>>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy out the registry's current state, split into the three
    /// comparison tiers. An open probing window is reported as closed in
    /// the snapshot (without mutating the registry), so an end-of-run
    /// snapshot always includes the final window.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut inner = lock(&self.inner).clone();
        inner.close_open_window();
        TelemetrySnapshot {
            deterministic: DeterministicSnapshot {
                observations: inner.observations,
                responses: inner.responses,
                expansion_probes: inner.expansion_probes,
                rate_backoffs: inner.rate_backoffs,
                rate_recoveries: inner.rate_recoveries,
                queue_high_water: inner.queue_high_water,
                epochs: inner.epochs_closed,
                admitted: inner.admitted,
                evicted: inner.evicted,
                windows: inner.windows,
                window_latency: inner.latency,
                events: inner.events,
            },
            topology: TopologySnapshot {
                shards: inner.shards,
                producers: inner.producers,
                probes_per_producer: lock(&self.producer_probes).clone(),
                routed_per_shard: inner.routed_per_shard,
                ingested_per_shard: inner.ingested_per_shard,
            },
            profile: ProfileSnapshot {
                stalls: self.stalls.load(Ordering::Relaxed),
                channel_high_water: self.channel_high_water.load(Ordering::Relaxed),
                wall_spans: lock(&self.wall_spans)
                    .iter()
                    .map(|(label, nanos)| ((*label).to_string(), *nanos))
                    .collect(),
            },
        }
    }
}

impl StreamObserver for Telemetry {
    fn on_run_start(&self, shards: usize, producers: usize) {
        let mut inner = lock(&self.inner);
        inner.shards = inner.shards.max(shards);
        inner.producers = inner.producers.max(producers);
        if inner.routed_per_shard.len() < shards {
            inner.routed_per_shard.resize(shards, 0);
        }
        if inner.ingested_per_shard.len() < shards {
            inner.ingested_per_shard.resize(shards, 0);
        }
        drop(inner);
        let mut probes = lock(&self.producer_probes);
        if probes.len() < producers {
            probes.resize(producers, 0);
        }
        drop(probes);
        let mut live = lock(&self.ingested_live);
        if live.len() < shards {
            live.resize(shards, 0);
        }
    }

    fn on_probe_sent(&self, producer: usize) {
        *grow_slot(&mut lock(&self.producer_probes), producer) += 1;
    }

    fn on_routed(&self, shard: usize, window: u64, sent_at: SimTime, responded: bool) {
        let mut inner = lock(&self.inner);
        inner.observations += 1;
        if responded {
            inner.responses += 1;
        }
        *grow_slot(&mut inner.routed_per_shard, shard) += 1;
        let routed = inner.routed_per_shard[shard];
        inner.last_send = Some(sent_at);
        let starts_new_window = match &mut inner.open {
            Some(agg) if agg.window == window => {
                agg.observations += 1;
                if responded {
                    agg.responses += 1;
                }
                agg.last_send = sent_at;
                false
            }
            Some(agg) => {
                debug_assert!(agg.window < window, "windows only advance");
                true
            }
            None => true,
        };
        if starts_new_window {
            inner.close_open_window();
            inner.open = Some(WindowAgg {
                window,
                observations: 1,
                responses: u64::from(responded),
                first_send: sent_at,
                last_send: sent_at,
            });
        }
        drop(inner);
        // Wall-clock tier: channel-depth proxy for this shard, sampled at
        // route time as routed minus live-ingested.
        let ingested = lock(&self.ingested_live).get(shard).copied().unwrap_or(0);
        self.channel_high_water
            .fetch_max(routed.saturating_sub(ingested), Ordering::Relaxed);
    }

    fn on_shard_progress(&self, shard: usize, ingested: u64) {
        *grow_slot(&mut lock(&self.ingested_live), shard) += ingested;
    }

    fn on_shard_final(&self, shard: usize, ingested: u64) {
        *grow_slot(&mut lock(&self.inner).ingested_per_shard, shard) = ingested;
    }

    fn on_stall(&self, _shard: usize) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    fn on_rate_change(&self, at: SimTime, window: u64, from_pps: u64, to_pps: u64) {
        let mut inner = lock(&self.inner);
        let kind = if to_pps < from_pps {
            inner.rate_backoffs += 1;
            EventKind::RateBackoff { from_pps, to_pps }
        } else {
            inner.rate_recoveries += 1;
            EventKind::RateRecovery { from_pps, to_pps }
        };
        let epoch = inner.epoch;
        inner.events.push(TelemetryEvent {
            virtual_time: at,
            window,
            epoch,
            shard: None,
            kind,
        });
    }

    fn on_queue_depth(&self, depth: u64) {
        let mut inner = lock(&self.inner);
        if depth > inner.queue_high_water {
            inner.queue_high_water = depth;
        }
    }

    fn on_phase_close(&self, phase: &'static str, probes: u64) {
        let mut inner = lock(&self.inner);
        inner.close_open_window();
        let event = TelemetryEvent {
            virtual_time: inner.last_send.unwrap_or(SimTime::EPOCH),
            window: inner.windows.last().map_or(0, |w| w.window),
            epoch: inner.epoch,
            shard: None,
            kind: EventKind::PhaseClose { phase, probes },
        };
        inner.events.push(event);
    }

    fn on_epoch_close(&self, summary: &EpochSummary<'_>) {
        let mut inner = lock(&self.inner);
        inner.close_open_window();
        inner.epochs_closed += 1;
        inner.admitted += summary.admitted.len() as u64;
        inner.evicted += summary.evicted.len() as u64;
        inner.expansion_probes += summary.expansion_probes;
        inner.events.push(TelemetryEvent {
            virtual_time: summary.at,
            window: summary.window,
            epoch: summary.epoch,
            shard: None,
            kind: EventKind::EpochClose {
                admitted: summary.admitted.to_vec(),
                evicted: summary.evicted.to_vec(),
                watch_len: summary.watch_len,
                expansion_probes: summary.expansion_probes,
            },
        });
        inner.epoch = summary.epoch + 1;
    }

    fn on_watch_exhausted(&self, at: SimTime, window: u64, epoch: u64) {
        let mut inner = lock(&self.inner);
        inner.close_open_window();
        inner.events.push(TelemetryEvent {
            virtual_time: at,
            window,
            epoch,
            shard: None,
            kind: EventKind::WatchExhausted,
        });
    }

    fn on_wall_span(&self, label: &'static str, nanos: u64) {
        lock(&self.wall_spans).push((label, nanos));
    }

    fn checkpoint_deterministic(&self) -> Option<DeterministicSnapshot> {
        Some(self.snapshot().deterministic)
    }

    /// Restore the deterministic tier from a checkpoint. Only that tier
    /// round-trips: topology breakdowns and wall-clock profiling restart
    /// from zero on resume (they are keyed to a process, not a run, and are
    /// excluded from the byte-identical comparisons).
    fn restore_deterministic(&self, det: &DeterministicSnapshot) {
        let mut inner = lock(&self.inner);
        inner.observations = det.observations;
        inner.responses = det.responses;
        inner.expansion_probes = det.expansion_probes;
        inner.rate_backoffs = det.rate_backoffs;
        inner.rate_recoveries = det.rate_recoveries;
        inner.queue_high_water = det.queue_high_water;
        inner.epochs_closed = det.epochs;
        inner.admitted = det.admitted;
        inner.evicted = det.evicted;
        // New events stamp the next epoch to close; every checkpointed epoch
        // already closed.
        inner.epoch = det.epochs;
        inner.last_send = det.windows.last().map(|w| w.last_send);
        // The capture closed any open window, so the restored registry
        // starts with none; the resumed run's first routed observation opens
        // the next window exactly as the uninterrupted run would.
        inner.open = None;
        inner.windows = det.windows.clone();
        inner.latency = det.window_latency.clone();
        inner.events = det.events.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn windows_close_on_advance_and_at_snapshot() {
        let telemetry = Telemetry::new();
        telemetry.on_run_start(2, 1);
        telemetry.on_routed(0, 0, t(10), true);
        telemetry.on_routed(1, 0, t(11), false);
        telemetry.on_routed(0, 1, t(100), true);

        let snapshot = telemetry.snapshot();
        let det = &snapshot.deterministic;
        assert_eq!(det.observations, 3);
        assert_eq!(det.responses, 2);
        assert_eq!(det.windows.len(), 2, "open window closed in the snapshot");
        assert_eq!(det.windows[0].window, 0);
        assert_eq!(det.windows[0].observations, 2);
        assert_eq!(det.windows[0].latency_secs(), 1);
        assert_eq!(det.windows[1].observations, 1);
        assert_eq!(det.window_latency.count(), 2);
        assert!(matches!(
            det.events[0].kind,
            EventKind::WindowClose {
                observations: 2,
                responses: 1,
                ..
            }
        ));
        assert_eq!(snapshot.topology.routed_per_shard, vec![2, 1]);
        // Snapshotting again is idempotent: the registry itself is unchanged.
        assert_eq!(telemetry.snapshot(), snapshot);
    }

    #[test]
    fn rate_changes_split_into_backoffs_and_recoveries() {
        let telemetry = Telemetry::new();
        telemetry.on_rate_change(t(5), 0, 128, 64);
        telemetry.on_rate_change(t(9), 0, 64, 72);
        telemetry.on_queue_depth(40);
        telemetry.on_queue_depth(17);
        let det = telemetry.snapshot().deterministic;
        assert_eq!(det.rate_backoffs, 1);
        assert_eq!(det.rate_recoveries, 1);
        assert_eq!(det.queue_high_water, 40);
        let jsonl = events_jsonl(&det.events);
        assert!(jsonl.contains("\"kind\":\"rate_backoff\",\"from_pps\":128,\"to_pps\":64"));
        assert!(jsonl.contains("\"kind\":\"rate_recovery\",\"from_pps\":64,\"to_pps\":72"));
    }

    #[test]
    fn epoch_close_journals_revisions() {
        let telemetry = Telemetry::new();
        let admitted: Vec<scent_ipv6::Ipv6Prefix> = vec!["2001:db8:1::/48".parse().unwrap()];
        telemetry.on_routed(0, 0, t(3), true);
        telemetry.on_epoch_close(&EpochSummary {
            epoch: 0,
            at: t(86_400),
            window: 0,
            admitted: &admitted,
            evicted: &[],
            watch_len: 3,
            expansion_probes: 12,
        });
        let det = telemetry.snapshot().deterministic;
        assert_eq!(det.epochs, 1);
        assert_eq!((det.admitted, det.evicted), (1, 0));
        assert_eq!(det.expansion_probes, 12);
        // The epoch's window closed before the epoch-close event.
        assert!(matches!(det.events[0].kind, EventKind::WindowClose { .. }));
        let jsonl = events_jsonl(&det.events);
        assert!(jsonl.contains("\"kind\":\"epoch_close\",\"admitted\":[\"2001:db8:1::/48\"]"));
        assert!(jsonl.contains("\"watch_len\":3,\"expansion_probes\":12"));
    }

    #[test]
    fn exporters_render_every_tier() {
        let telemetry = Telemetry::new();
        telemetry.on_run_start(1, 2);
        telemetry.on_probe_sent(0);
        telemetry.on_probe_sent(1);
        telemetry.on_probe_sent(1);
        telemetry.on_routed(0, 0, t(1), true);
        telemetry.on_shard_progress(0, 1);
        telemetry.on_shard_final(0, 1);
        telemetry.on_stall(0);
        telemetry.on_wall_span("run", 1_234);
        let snapshot = telemetry.snapshot();
        let text = prometheus(&snapshot);
        assert!(text.contains("scent_observations_total 1"));
        assert!(text.contains("scent_probes_total{producer=\"1\"} 2"));
        assert!(text.contains("scent_ingested_total{shard=\"0\"} 1"));
        assert!(text.contains("scent_backpressure_stalls_total 1"));
        assert!(text.contains("scent_wall_span_nanoseconds{span=\"run\"} 1234"));
        assert!(text.contains("scent_window_latency_virtual_seconds_bucket{le=\"+Inf\"} 1"));
        // The deterministic rendering carries no topology or profile state.
        let det = deterministic_text(&snapshot.deterministic);
        assert!(!det.contains("shard=\""));
        assert!(!det.contains("producer=\""));
        assert!(!det.contains("wall_span"));
    }

    #[test]
    fn restore_deterministic_roundtrips_into_a_fresh_registry() {
        let telemetry = Telemetry::new();
        telemetry.on_run_start(2, 2);
        telemetry.on_routed(0, 0, t(10), true);
        telemetry.on_routed(1, 0, t(11), false);
        telemetry.on_rate_change(t(12), 0, 128, 64);
        telemetry.on_epoch_close(&EpochSummary {
            epoch: 0,
            at: t(86_400),
            window: 0,
            admitted: &[],
            evicted: &[],
            watch_len: 1,
            expansion_probes: 3,
        });

        let det = telemetry
            .checkpoint_deterministic()
            .expect("telemetry checkpoints its deterministic tier");
        let restored = Telemetry::new();
        restored.on_run_start(2, 2);
        restored.restore_deterministic(&det);
        assert_eq!(restored.snapshot().deterministic, det);

        // Continuing both registries identically keeps them identical.
        for registry in [&telemetry, &restored] {
            registry.on_routed(0, 1, t(86_500), true);
            registry.on_rate_change(t(86_510), 1, 64, 72);
        }
        assert_eq!(
            restored.snapshot().deterministic,
            telemetry.snapshot().deterministic
        );
        // Epoch stamps on post-restore events continue the sequence.
        let continued = restored.snapshot().deterministic;
        assert_eq!(continued.events.last().map(|e| e.epoch), Some(1));
    }

    #[test]
    fn histogram_from_parts_roundtrips() {
        let mut histogram = Histogram::new();
        histogram.observe(3);
        histogram.observe(70_000);
        let mut counts = [0u64; LATENCY_BOUNDS_SECS.len() + 1];
        counts.copy_from_slice(histogram.bucket_counts());
        let rebuilt = Histogram::from_parts(counts, histogram.sum(), histogram.count());
        assert_eq!(rebuilt, histogram);
    }

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let mut histogram = Histogram::new();
        histogram.observe(1);
        histogram.observe(2);
        histogram.observe(100_000);
        assert_eq!(histogram.count(), 3);
        assert_eq!(histogram.sum(), 100_003);
        assert_eq!(histogram.bucket_counts()[0], 1, "1 <= 1");
        assert_eq!(histogram.bucket_counts()[1], 1, "2 <= 4");
        assert_eq!(
            histogram.bucket_counts()[LATENCY_BOUNDS_SECS.len()],
            1,
            "overflow lands in +Inf"
        );
    }
}

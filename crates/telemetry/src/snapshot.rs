//! Snapshot shapes: the registry's state at a point in time, split into the
//! three comparison tiers.
//!
//! * [`DeterministicSnapshot`] — workload metrics and the event journal.
//!   Byte-identical (via [`deterministic_text`](crate::deterministic_text)
//!   and [`events_jsonl`](crate::events_jsonl)) across shard counts,
//!   producer counts, thread schedules and live-vs-recorded backends, under
//!   the same conditions that make reports invariant.
//! * [`TopologySnapshot`] — per-shard and per-producer breakdowns. Still a
//!   pure function of (config, world seed), but keyed by the configured
//!   topology, so comparable only between runs of the same configuration.
//! * [`ProfileSnapshot`] — wall-clock profiling state. Excluded from every
//!   determinism check.

use scent_simnet::SimTime;

use crate::event::TelemetryEvent;

/// Virtual-second bucket bounds of the window-latency histogram
/// (upper-inclusive; one implicit `+Inf` bucket follows).
pub const LATENCY_BOUNDS_SECS: [u64; 9] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

/// A fixed-bucket histogram over virtual-time durations in seconds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    counts: [u64; LATENCY_BOUNDS_SECS.len() + 1],
    sum: u64,
    count: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (virtual seconds).
    pub fn observe(&mut self, value: u64) {
        let bucket = LATENCY_BOUNDS_SECS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(LATENCY_BOUNDS_SECS.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Per-bucket counts, in [`LATENCY_BOUNDS_SECS`] order with the `+Inf`
    /// bucket last. Not cumulative; the Prometheus exporter accumulates.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Rebuild a histogram from previously exported parts (the counterpart
    /// of [`Histogram::bucket_counts`] / [`Histogram::sum`] /
    /// [`Histogram::count`]) — how a checkpoint restores the latency
    /// histogram.
    pub fn from_parts(counts: [u64; LATENCY_BOUNDS_SECS.len() + 1], sum: u64, count: u64) -> Self {
        Histogram { counts, sum, count }
    }
}

/// Aggregates of one closed probing window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// The window's id (the engine's global numbering).
    pub window: u64,
    /// Observations routed during the window.
    pub observations: u64,
    /// The subset of `observations` that carried a response.
    pub responses: u64,
    /// The window's first send time.
    pub first_send: SimTime,
    /// The window's last send time.
    pub last_send: SimTime,
}

impl WindowStats {
    /// The window's virtual-time latency (last send minus first send), in
    /// seconds.
    pub fn latency_secs(&self) -> u64 {
        self.last_send.since(self.first_send).as_secs()
    }
}

/// The deterministic tier: a pure function of (config, world seed).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeterministicSnapshot {
    /// Observations routed, in merged clock order.
    pub observations: u64,
    /// The subset of `observations` that carried a response.
    pub responses: u64,
    /// Probes spent by watch-list churn boundary re-expansions.
    pub expansion_probes: u64,
    /// AIMD multiplicative back-offs taken.
    pub rate_backoffs: u64,
    /// AIMD additive recoveries taken.
    pub rate_recoveries: u64,
    /// High-water mark of the modelled virtual-queue depth.
    pub queue_high_water: u64,
    /// Watch-list churn epochs closed.
    pub epochs: u64,
    /// Total /48s admitted across every watch-list revision.
    pub admitted: u64,
    /// Total /48s evicted across every watch-list revision.
    pub evicted: u64,
    /// Per-window aggregates, in close order.
    pub windows: Vec<WindowStats>,
    /// Window virtual-time latencies, as a histogram.
    pub window_latency: Histogram,
    /// The structured event journal, in record order.
    pub events: Vec<TelemetryEvent>,
}

/// Per-shard and per-producer breakdowns: deterministic in value, but keyed
/// by the configured topology.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopologySnapshot {
    /// Configured inference shard count.
    pub shards: usize,
    /// Configured probe producer count.
    pub producers: usize,
    /// Probes pulled per producer (strided slicing: producer `k` owns
    /// positions `k, k+P, k+2P, …`).
    pub probes_per_producer: Vec<u64>,
    /// Observations routed to each shard.
    pub routed_per_shard: Vec<u64>,
    /// Observations each shard worker ingested (from the joined final
    /// states; equals `routed_per_shard` once the run drained).
    pub ingested_per_shard: Vec<u64>,
}

/// The wall-clock tier: profiling state excluded from determinism checks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileSnapshot {
    /// Times the router hit a full shard channel and blocked.
    pub stalls: u64,
    /// High-water mark of the routed-minus-ingested channel-depth proxy,
    /// sampled at route time.
    pub channel_high_water: u64,
    /// OS-time span measurements, `(label, nanoseconds)`, in record order.
    pub wall_spans: Vec<(String, u64)>,
}

/// The registry's complete state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// The deterministic tier; see [`DeterministicSnapshot`].
    pub deterministic: DeterministicSnapshot,
    /// The topology tier; see [`TopologySnapshot`].
    pub topology: TopologySnapshot,
    /// The wall-clock tier; see [`ProfileSnapshot`].
    pub profile: ProfileSnapshot,
}

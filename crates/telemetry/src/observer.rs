//! The observer trait the streaming engine calls into.
//!
//! Every hook has an empty default body, and the engine holds the observer
//! as `Option<&dyn StreamObserver>`: a disabled run pays one predictable
//! `None` branch per hook site and nothing else. The
//! [`Telemetry`](crate::Telemetry) registry is the canonical implementor;
//! custom implementors (a live TUI, a log shipper) only override the hooks
//! they care about.
//!
//! # Determinism contract
//!
//! Hooks split into two tiers, and implementors must keep them separate:
//!
//! * **Deterministic tier** — called from the merge side of the engine, in
//!   deterministic clock order: [`StreamObserver::on_routed`],
//!   [`StreamObserver::on_rate_change`], [`StreamObserver::on_queue_depth`],
//!   [`StreamObserver::on_phase_close`], [`StreamObserver::on_epoch_close`],
//!   [`StreamObserver::on_shard_final`]. The call sequence is a pure
//!   function of (config, world seed).
//! * **Wall-clock tier** — called from producer or shard-worker threads, or
//!   reporting OS time: [`StreamObserver::on_probe_sent`],
//!   [`StreamObserver::on_shard_progress`], [`StreamObserver::on_stall`],
//!   [`StreamObserver::on_wall_span`]. Totals are deterministic, but the
//!   interleaving is whatever the scheduler did.

use scent_ipv6::Ipv6Prefix;
use scent_simnet::SimTime;

use crate::snapshot::DeterministicSnapshot;

/// Everything the engine reports about one closed watch-list churn epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSummary<'a> {
    /// The epoch's index (0-based, in revision order).
    pub epoch: u64,
    /// The epoch's boundary in virtual time (when the re-expansion ran).
    pub at: SimTime,
    /// The last window of the epoch.
    pub window: u64,
    /// /48s admitted to the watch list by the epoch's revision.
    pub admitted: &'a [Ipv6Prefix],
    /// /48s evicted from the watch list by the epoch's revision.
    pub evicted: &'a [Ipv6Prefix],
    /// Size of the revised watch list.
    pub watch_len: usize,
    /// Probes spent by the epoch's boundary re-expansion.
    pub expansion_probes: u64,
}

/// Hook points the streaming engine calls while it runs.
///
/// See the [crate docs](crate) for the determinism contract. The `Sync`
/// supertrait is what lets one observer be shared by reference across
/// producer, router and shard-worker threads.
///
/// The engine's allocation-free hot path (batched channel payloads, buffer
/// recycling, precomputed position → shard tables) is invisible from here
/// by design: deterministic-tier hooks fire in merged clock order for the
/// identical observation sequence whether batching and recycling are on or
/// off — those mechanics only change where buffer memory comes from, never
/// what flows through it. Only wall-clock-tier hooks (stalls, shard
/// progress granularity) can observe batching at all, and they carry no
/// determinism promise to begin with.
pub trait StreamObserver: Sync {
    /// A streamed run is starting with the given shard and producer counts.
    fn on_run_start(&self, _shards: usize, _producers: usize) {}

    /// A producer pulled one probe observation from its slice.
    /// Producer-thread (wall-clock tier): per-producer totals are
    /// deterministic, the interleaving is not.
    fn on_probe_sent(&self, _producer: usize) {}

    /// The router routed one observation, in merged deterministic clock
    /// order (deterministic tier).
    fn on_routed(&self, _shard: usize, _window: u64, _sent_at: SimTime, _responded: bool) {}

    /// A shard worker ingested `ingested` more observations (one channel
    /// message's worth). Worker-thread (wall-clock tier).
    fn on_shard_progress(&self, _shard: usize, _ingested: u64) {}

    /// A shard worker finished with `ingested` observations ingested in
    /// total. Called from the merge side after the join, shard by shard in
    /// index order (deterministic tier).
    fn on_shard_final(&self, _shard: usize, _ingested: u64) {}

    /// The router hit a full shard channel and fell back to a blocking
    /// send (wall-clock tier — a scheduling fact, not engine state).
    fn on_stall(&self, _shard: usize) {}

    /// The AIMD rate feedback changed the probe rate at virtual time `at`
    /// (deterministic tier; backed by the virtual-queue model, so the
    /// trajectory is a pure function of config and target order).
    fn on_rate_change(&self, _at: SimTime, _window: u64, _from_pps: u64, _to_pps: u64) {}

    /// The virtual queue's modelled depth after pacing one observation
    /// (deterministic tier).
    fn on_queue_depth(&self, _depth: u64) {}

    /// A discovery-pipeline phase finished having routed `probes`
    /// observations (deterministic tier).
    fn on_phase_close(&self, _phase: &'static str, _probes: u64) {}

    /// A watch-list churn epoch closed (deterministic tier).
    fn on_epoch_close(&self, _summary: &EpochSummary<'_>) {}

    /// A churning monitor's watch list drained to terminal-empty at the
    /// epoch boundary `at`: the revision closing `window` left nothing
    /// watched and re-expansion could never refill it, so the run ends (or
    /// the scheduler parks the session) there. Called once per run at most,
    /// right after the draining revision's
    /// [`StreamObserver::on_epoch_close`] (deterministic tier).
    fn on_watch_exhausted(&self, _at: SimTime, _window: u64, _epoch: u64) {}

    /// An OS-time span measurement, in nanoseconds (wall-clock tier;
    /// explicitly excluded from determinism checks).
    fn on_wall_span(&self, _label: &'static str, _nanos: u64) {}

    /// The observer's deterministic-tier state, for inclusion in a monitor
    /// checkpoint — or `None` (the default) for observers that carry no
    /// checkpointable state. Called from the merge side at epoch boundaries
    /// (deterministic tier).
    fn checkpoint_deterministic(&self) -> Option<DeterministicSnapshot> {
        None
    }

    /// Restore the observer's deterministic-tier state from a monitor
    /// checkpoint, before a resumed run replays its remaining epochs. The
    /// default does nothing. Only the deterministic tier round-trips:
    /// topology and wall-clock tiers restart from zero on resume.
    fn restore_deterministic(&self, _det: &DeterministicSnapshot) {}
}

/// An observer that ignores everything — useful as an explicit "observed
/// but discarded" baseline (e.g. in overhead benches).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl StreamObserver for NoopObserver {}

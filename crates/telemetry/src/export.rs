//! Exporters: Prometheus text exposition and a JSONL event stream.
//!
//! Both are hand-rolled, dependency-free string renderers with fully
//! deterministic output — fixed metric order, fixed label order, no
//! hash-map iteration anywhere — so the rendered deterministic tier can be
//! byte-compared across runs the same way reports are.

use std::fmt::Write as _;

use scent_ipv6::Ipv6Prefix;

use crate::event::{EventKind, TelemetryEvent};
use crate::snapshot::{
    DeterministicSnapshot, ProfileSnapshot, TelemetrySnapshot, TopologySnapshot,
    LATENCY_BOUNDS_SECS,
};

fn metric(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

fn indexed_metric(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    label: &str,
    values: &[u64],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (index, value) in values.iter().enumerate() {
        let _ = writeln!(out, "{name}{{{label}=\"{index}\"}} {value}");
    }
}

/// Render the deterministic tier in Prometheus text exposition format.
///
/// Byte-identical across shard counts, producer counts, thread schedules
/// and live-vs-recorded backends whenever the underlying run is (the same
/// conditions under which reports are invariant).
pub fn deterministic_text(snapshot: &DeterministicSnapshot) -> String {
    let mut out = String::new();
    metric(
        &mut out,
        "scent_observations_total",
        "counter",
        "Observations routed, in merged deterministic clock order.",
        snapshot.observations,
    );
    metric(
        &mut out,
        "scent_responses_total",
        "counter",
        "Routed observations that carried a response.",
        snapshot.responses,
    );
    metric(
        &mut out,
        "scent_expansion_probes_total",
        "counter",
        "Probes spent by watch-list churn boundary re-expansions.",
        snapshot.expansion_probes,
    );
    metric(
        &mut out,
        "scent_rate_backoffs_total",
        "counter",
        "AIMD multiplicative back-offs taken by the rate feedback.",
        snapshot.rate_backoffs,
    );
    metric(
        &mut out,
        "scent_rate_recoveries_total",
        "counter",
        "AIMD additive recoveries taken by the rate feedback.",
        snapshot.rate_recoveries,
    );
    metric(
        &mut out,
        "scent_virtual_queue_high_water",
        "gauge",
        "High-water mark of the modelled virtual-queue depth.",
        snapshot.queue_high_water,
    );
    metric(
        &mut out,
        "scent_epochs_closed_total",
        "counter",
        "Watch-list churn epochs closed.",
        snapshot.epochs,
    );
    metric(
        &mut out,
        "scent_watch_admitted_total",
        "counter",
        "/48s admitted across every watch-list revision.",
        snapshot.admitted,
    );
    metric(
        &mut out,
        "scent_watch_evicted_total",
        "counter",
        "/48s evicted across every watch-list revision.",
        snapshot.evicted,
    );
    metric(
        &mut out,
        "scent_windows_closed_total",
        "counter",
        "Probing windows closed.",
        snapshot.windows.len() as u64,
    );
    let name = "scent_window_latency_virtual_seconds";
    let _ = writeln!(
        out,
        "# HELP {name} Window virtual-time latency (last send minus first send)."
    );
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bucket, count) in snapshot.window_latency.bucket_counts().iter().enumerate() {
        cumulative += count;
        match LATENCY_BOUNDS_SECS.get(bucket) {
            Some(bound) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", snapshot.window_latency.sum());
    let _ = writeln!(out, "{name}_count {}", snapshot.window_latency.count());
    out
}

/// Render the topology tier (per-shard / per-producer breakdowns) in
/// Prometheus text exposition format. Deterministic in value, but keyed by
/// the configured topology, so comparable only between runs of the same
/// configuration.
pub fn topology_text(snapshot: &TopologySnapshot) -> String {
    let mut out = String::new();
    metric(
        &mut out,
        "scent_shards",
        "gauge",
        "Configured inference shard count.",
        snapshot.shards as u64,
    );
    metric(
        &mut out,
        "scent_producers",
        "gauge",
        "Configured probe producer count.",
        snapshot.producers as u64,
    );
    indexed_metric(
        &mut out,
        "scent_probes_total",
        "counter",
        "Probes pulled per producer (strided slicing).",
        "producer",
        &snapshot.probes_per_producer,
    );
    indexed_metric(
        &mut out,
        "scent_routed_total",
        "counter",
        "Observations routed to each shard.",
        "shard",
        &snapshot.routed_per_shard,
    );
    indexed_metric(
        &mut out,
        "scent_ingested_total",
        "counter",
        "Observations each shard worker ingested (final states).",
        "shard",
        &snapshot.ingested_per_shard,
    );
    out
}

/// Render the wall-clock tier in Prometheus text exposition format.
/// Excluded from every determinism check.
pub fn profile_text(snapshot: &ProfileSnapshot) -> String {
    let mut out = String::new();
    metric(
        &mut out,
        "scent_backpressure_stalls_total",
        "counter",
        "Times the router hit a full shard channel and blocked.",
        snapshot.stalls,
    );
    metric(
        &mut out,
        "scent_channel_high_water",
        "gauge",
        "High-water mark of the routed-minus-ingested channel-depth proxy.",
        snapshot.channel_high_water,
    );
    let name = "scent_wall_span_nanoseconds";
    let _ = writeln!(out, "# HELP {name} OS-time span measurements.");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (label, nanos) in &snapshot.wall_spans {
        let _ = writeln!(out, "{name}{{span=\"{label}\"}} {nanos}");
    }
    out
}

/// Render the whole snapshot — all three tiers — in Prometheus text
/// exposition format, deterministic tier first.
pub fn prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = deterministic_text(&snapshot.deterministic);
    out.push_str(&topology_text(&snapshot.topology));
    out.push_str(&profile_text(&snapshot.profile));
    out
}

fn prefix_list(out: &mut String, prefixes: &[Ipv6Prefix]) {
    out.push('[');
    for (index, prefix) in prefixes.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{prefix}\"");
    }
    out.push(']');
}

/// Render the event journal as JSONL: one JSON object per line, in record
/// order. Part of the deterministic tier.
pub fn events_jsonl(events: &[TelemetryEvent]) -> String {
    let mut out = String::new();
    for event in events {
        let _ = write!(
            out,
            "{{\"virtual_time\":{},\"window\":{},\"epoch\":{}",
            event.virtual_time.as_secs(),
            event.window,
            event.epoch
        );
        match event.shard {
            Some(shard) => {
                let _ = write!(out, ",\"shard\":{shard}");
            }
            None => out.push_str(",\"shard\":null"),
        }
        match &event.kind {
            EventKind::WindowClose {
                observations,
                responses,
                first_send,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"window_close\",\"observations\":{observations},\
                     \"responses\":{responses},\"first_send\":{}",
                    first_send.as_secs()
                );
            }
            EventKind::PhaseClose { phase, probes } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"phase_close\",\"phase\":\"{phase}\",\"probes\":{probes}"
                );
            }
            EventKind::RateBackoff { from_pps, to_pps } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"rate_backoff\",\"from_pps\":{from_pps},\"to_pps\":{to_pps}"
                );
            }
            EventKind::RateRecovery { from_pps, to_pps } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"rate_recovery\",\"from_pps\":{from_pps},\"to_pps\":{to_pps}"
                );
            }
            EventKind::EpochClose {
                admitted,
                evicted,
                watch_len,
                expansion_probes,
            } => {
                out.push_str(",\"kind\":\"epoch_close\",\"admitted\":");
                prefix_list(&mut out, admitted);
                out.push_str(",\"evicted\":");
                prefix_list(&mut out, evicted);
                let _ = write!(
                    out,
                    ",\"watch_len\":{watch_len},\"expansion_probes\":{expansion_probes}"
                );
            }
            EventKind::WatchExhausted => {
                out.push_str(",\"kind\":\"watch_exhausted\"");
            }
        }
        out.push_str("}\n");
    }
    out
}

//! The structured event journal: what happened, in virtual time.
//!
//! Every event is recorded on the merge side of the streaming engine — the
//! single thread that consumes observations in deterministic clock order —
//! so the journal is a pure function of (config, world seed): byte-identical
//! across shard counts, producer counts, thread schedules and
//! live-vs-recorded backends.

use scent_ipv6::Ipv6Prefix;
use scent_simnet::SimTime;

/// One entry of the telemetry event journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// When the event happened, in virtual time.
    pub virtual_time: SimTime,
    /// The window the event belongs to (the engine's global window
    /// numbering).
    pub window: u64,
    /// The watch-list epoch the event belongs to (always 0 when churn is
    /// off).
    pub epoch: u64,
    /// The inference shard the event concerns, when it concerns exactly
    /// one. `None` for engine-wide events (all current kinds).
    pub shard: Option<usize>,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of events the streaming engine journals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A probing window finished: no further observations carry its window
    /// id. The event's `virtual_time` is the window's last send time.
    WindowClose {
        /// Observations routed during the window.
        observations: u64,
        /// The subset of `observations` that carried a response.
        responses: u64,
        /// The window's first send time; the window's virtual-time latency
        /// is `virtual_time - first_send`.
        first_send: SimTime,
    },
    /// A discovery-pipeline phase (expansion, density, one detection
    /// window) finished.
    PhaseClose {
        /// The phase's name (`"expansion"`, `"density"`, `"detection"`).
        phase: &'static str,
        /// Observations the phase routed.
        probes: u64,
    },
    /// The AIMD rate feedback halved the probe rate because the virtual
    /// queue crossed its high watermark.
    RateBackoff {
        /// Probe rate before the back-off, packets per second.
        from_pps: u64,
        /// Probe rate after the back-off.
        to_pps: u64,
    },
    /// The AIMD rate feedback recovered additively because the virtual
    /// queue drained below its low watermark.
    RateRecovery {
        /// Probe rate before the recovery, packets per second.
        from_pps: u64,
        /// Probe rate after the recovery.
        to_pps: u64,
    },
    /// A watch-list churn epoch closed: the boundary re-expansion ran and
    /// the watch list was revised.
    EpochClose {
        /// /48s admitted to the watch list by this revision.
        admitted: Vec<Ipv6Prefix>,
        /// /48s evicted from the watch list by this revision.
        evicted: Vec<Ipv6Prefix>,
        /// Size of the revised watch list.
        watch_len: usize,
        /// Probes spent by the boundary re-expansion.
        expansion_probes: u64,
    },
    /// A churning monitor's watch list drained to terminal-empty: the
    /// revision closing this window evicted the last watched /48 and the
    /// boundary re-expansion validated nothing, so the run ended (or the
    /// session parked) at this boundary. At most one per run, always the
    /// journal's last churn event.
    WatchExhausted,
}

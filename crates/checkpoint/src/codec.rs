//! The hand-rolled byte codec checkpoints are built on.
//!
//! No serde: the vendored `serde` is an API stub whose derives expand to
//! nothing, so snapshots are encoded by hand against a [`Writer`] and decoded
//! from a [`Reader`]. The format is deliberately boring — little-endian fixed
//! widths, `u64` length prefixes, no padding — so that a snapshot's bytes are
//! a pure function of the encoded state (hash-stable across runs and
//! platforms) and every decode failure maps onto a typed
//! [`CheckpointError`].
//!
//! [`Checkpointable`] is the per-type contract: `encode` must write exactly
//! what `decode` reads. Unordered collections (`HashMap`, `HashSet`) are
//! encoded in sorted key order, which is what keeps snapshot bytes
//! deterministic — two runs holding equal state produce identical files.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::error::CheckpointError;

/// FNV-1a 64-bit over a byte slice: the checksum and fingerprint hash of the
/// snapshot format. Chosen for having a one-line, dependency-free,
/// platform-stable definition — corruption detection, not cryptography.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// An append-only encode buffer. All integers are little-endian; variable
/// length payloads carry a `u64` length prefix.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    pub fn put_u128(&mut self, value: u128) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }

    /// Append a `usize` widened to `u64` (sizes are 64-bit on the wire
    /// regardless of platform).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Append raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, value: &[u8]) {
        self.put_usize(value.len());
        self.buf.extend_from_slice(value);
    }

    /// Append a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// Append raw bytes with no length prefix (framing internals only).
    pub(crate) fn put_raw(&mut self, value: &[u8]) {
        self.buf.extend_from_slice(value);
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The FNV-1a-64 hash of everything written so far — how configuration
    /// and world fingerprints are derived from hand-encoded state.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(&self.buf)
    }
}

/// A cursor over encoded bytes. Every read that runs past the end returns
/// [`CheckpointError::Truncated`]; nothing panics on corrupt input.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CheckpointError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Read a `bool` (one byte; anything but 0 or 1 is invalid).
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::InvalidValue("bool")),
        }
    }

    /// Read a `usize` (encoded as `u64`; values beyond this platform's
    /// `usize` are invalid).
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::InvalidValue("usize"))
    }

    /// Read a `u64`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Read a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CheckpointError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| CheckpointError::InvalidValue("utf-8 string"))
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// A type that can round-trip through the checkpoint codec.
///
/// The contract: `decode(encode(x)) == x`, and `encode` writes a canonical
/// byte sequence (equal values encode identically — unordered containers are
/// serialized in sorted order). Decoding arbitrary bytes must return a
/// [`CheckpointError`], never panic.
pub trait Checkpointable: Sized {
    /// Append this value's canonical encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decode one value from `r`, consuming exactly the bytes `encode`
    /// wrote.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError>;
}

/// Encode a single value into a standalone byte vector.
pub fn encode_value<T: Checkpointable>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a single value from a standalone byte vector, requiring that every
/// byte is consumed.
pub fn decode_value<T: Checkpointable>(bytes: &[u8]) -> Result<T, CheckpointError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CheckpointError::InvalidValue("trailing bytes"));
    }
    Ok(value)
}

macro_rules! impl_checkpointable_int {
    ($($ty:ty => $put:ident / $get:ident),* $(,)?) => {
        $(
            impl Checkpointable for $ty {
                fn encode(&self, w: &mut Writer) {
                    w.$put(*self);
                }

                fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
                    r.$get()
                }
            }
        )*
    };
}

impl_checkpointable_int! {
    u8 => put_u8 / u8,
    u16 => put_u16 / u16,
    u32 => put_u32 / u32,
    u64 => put_u64 / u64,
    u128 => put_u128 / u128,
    usize => put_usize / usize,
    bool => put_bool / bool,
}

impl Checkpointable for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(r.str()?.to_string())
    }
}

impl<T: Checkpointable> Checkpointable for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_bool(false),
            Some(value) => {
                w.put_bool(true);
                value.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(if r.bool()? { Some(T::decode(r)?) } else { None })
    }
}

impl<T: Checkpointable> Checkpointable for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.usize()?;
        // Corrupt lengths must not trigger huge up-front allocations; cap the
        // preallocation and let growth follow actual decoded content.
        let mut items = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Checkpointable, B: Checkpointable, C: Checkpointable> Checkpointable for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Checkpointable + Default + Copy, const N: usize> Checkpointable for [T; N] {
    fn encode(&self, w: &mut Writer) {
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let mut items = [T::default(); N];
        for item in &mut items {
            *item = T::decode(r)?;
        }
        Ok(items)
    }
}

impl<K: Checkpointable + Ord, V: Checkpointable> Checkpointable for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for (key, value) in self {
            key.encode(w);
            value.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.usize()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(r)?;
            let value = V::decode(r)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

impl<T: Checkpointable + Ord> Checkpointable for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.usize()?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::decode(r)?);
        }
        Ok(set)
    }
}

impl<K, V, S> Checkpointable for HashMap<K, V, S>
where
    K: Checkpointable + Ord + std::hash::Hash,
    V: Checkpointable,
    S: std::hash::BuildHasher + Default,
{
    fn encode(&self, w: &mut Writer) {
        // Canonical bytes require a canonical order; sort by key. (This is
        // also why the impl can be generic over the hasher: the bytes never
        // depend on bucket order, so a map and its fast-hashed counterpart
        // encode identically.)
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_usize(entries.len());
        for (key, value) in entries {
            key.encode(w);
            value.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.usize()?;
        let mut map = HashMap::with_capacity_and_hasher(len.min(4096), S::default());
        for _ in 0..len {
            let key = K::decode(r)?;
            let value = V::decode(r)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

impl<T, S> Checkpointable for HashSet<T, S>
where
    T: Checkpointable + Ord + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn encode(&self, w: &mut Writer) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.put_usize(items.len());
        for item in items {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.usize()?;
        let mut set = HashSet::with_capacity_and_hasher(len.min(4096), S::default());
        for _ in 0..len {
            set.insert(T::decode(r)?);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Checkpointable + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_value(&value);
        let back: T = decode_value(&bytes).expect("roundtrip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(0xbeefu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX - 1);
        roundtrip(u128::MAX / 3);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("scent"));
        roundtrip(String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((1u64, String::from("x")));
        roundtrip((1u64, 2u8, 3u32));
        roundtrip([5u64, 6, 7]);
        roundtrip(BTreeMap::from([(1u64, 2u64), (3, 4)]));
        roundtrip(BTreeSet::from([9u64, 1, 4]));
        roundtrip(HashMap::from([(1u64, 2u64), (3, 4)]));
        roundtrip(HashSet::from([9u64, 1, 4]));
    }

    #[test]
    fn hash_containers_encode_canonically() {
        // Two maps built in different insertion orders hold equal state and
        // must produce identical bytes.
        let mut a = HashMap::new();
        a.insert(3u64, 30u64);
        a.insert(1, 10);
        a.insert(2, 20);
        let mut b = HashMap::new();
        b.insert(1u64, 10u64);
        b.insert(2, 20);
        b.insert(3, 30);
        assert_eq!(encode_value(&a), encode_value(&b));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = encode_value(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let result: Result<Vec<u64>, _> = decode_value(&bytes[..cut]);
            assert_eq!(result, Err(CheckpointError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn invalid_values_are_typed_errors() {
        assert_eq!(
            decode_value::<bool>(&[7]),
            Err(CheckpointError::InvalidValue("bool"))
        );
        let mut bad_utf8 = encode_value(&4u64);
        bad_utf8.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
        assert_eq!(
            decode_value::<String>(&bad_utf8),
            Err(CheckpointError::InvalidValue("utf-8 string"))
        );
        let mut trailing = encode_value(&1u64);
        trailing.push(0);
        assert_eq!(
            decode_value::<u64>(&trailing),
            Err(CheckpointError::InvalidValue("trailing bytes"))
        );
    }

    #[test]
    fn oversized_length_prefixes_do_not_allocate_the_moon() {
        // A length prefix of u64::MAX must fail with Truncated once the
        // items run out, not abort on allocation.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let result: Result<Vec<u64>, _> = decode_value(&w.into_bytes());
        assert!(matches!(
            result,
            Err(CheckpointError::Truncated) | Err(CheckpointError::InvalidValue(_))
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}

//! Snapshot framing: header, sections, trailing checksum.
//!
//! A snapshot is a self-describing byte container:
//!
//! ```text
//! magic           8 bytes   b"SCENTCKP"
//! version         u32       FORMAT_VERSION
//! config fp       u64       FNV-1a-64 over the run's encoded configuration
//! world fp        u64       FNV-1a-64 over the run's encoded routing table
//! section count   u32
//! sections        (id: u16, len: u64, payload: len bytes) × count
//! checksum        u64       FNV-1a-64 over every preceding byte
//! ```
//!
//! All integers are little-endian. The framing layer knows nothing about the
//! payloads — it hands back `(id, bytes)` pairs and lets the consumer decode
//! them with the [`Checkpointable`](crate::Checkpointable) machinery. That
//! split keeps the validation order fixed: magic, then version, then
//! checksum, then structure; fingerprint mismatches are the consumer's call
//! (a structurally perfect snapshot from the wrong run is still useless
//! *for resuming*, but a tool that just wants to inspect it can).

use crate::codec::{fnv1a64, Reader, Writer};
use crate::error::CheckpointError;

/// The eight magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"SCENTCKP";

/// The snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// The `(id, payload)` section pairs of a decoded snapshot, in file order.
pub type SnapshotSections<'a> = Vec<(u16, &'a [u8])>;

/// The validated header of a decoded snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version recorded in the snapshot (always
    /// [`FORMAT_VERSION`] after successful validation).
    pub version: u32,
    /// Fingerprint of the configuration the snapshot was taken under.
    pub config_fingerprint: u64,
    /// Fingerprint of the world (routing table) the snapshot was taken
    /// against.
    pub world_fingerprint: u64,
}

/// Frame `sections` into a complete snapshot byte vector.
///
/// Section ids are free-form tags chosen by the caller; they are written in
/// the order given (callers wanting canonical bytes pass a canonical order).
pub fn encode_snapshot(
    config_fingerprint: u64,
    world_fingerprint: u64,
    sections: &[(u16, &[u8])],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(config_fingerprint);
    w.put_u64(world_fingerprint);
    w.put_u32(u32::try_from(sections.len()).expect("section count fits u32"));
    for &(id, payload) in sections {
        w.put_u16(id);
        w.put_bytes(payload);
    }
    let checksum = fnv1a64(w.as_bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Validate and unframe a snapshot.
///
/// Validation order (each failure is its own [`CheckpointError`] variant):
/// magic bytes → format version → trailing checksum → section structure. The
/// version is checked *before* the checksum so a snapshot from a newer
/// format reports [`CheckpointError::VersionMismatch`], not a misleading
/// checksum failure.
pub fn decode_snapshot(
    bytes: &[u8],
) -> Result<(SnapshotHeader, SnapshotSections<'_>), CheckpointError> {
    if bytes.len() < MAGIC.len() {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    // The trailing 8 bytes are the checksum over everything before them.
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 4 + 8 {
        return Err(CheckpointError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let expected = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let found = fnv1a64(body);
    if found != expected {
        return Err(CheckpointError::ChecksumMismatch { found, expected });
    }
    // Re-read the validated body (past magic + version) for the header and
    // sections, careful not to run into the trailer.
    let mut r = Reader::new(&body[MAGIC.len() + 4..]);
    let config_fingerprint = r.u64()?;
    let world_fingerprint = r.u64()?;
    let count = r.u32()?;
    let mut sections = Vec::with_capacity((count as usize).min(4096));
    for _ in 0..count {
        let id = r.u16()?;
        let payload = r.bytes()?;
        sections.push((id, payload));
    }
    if !r.is_empty() {
        return Err(CheckpointError::InvalidValue("trailing section bytes"));
    }
    let header = SnapshotHeader {
        version,
        config_fingerprint,
        world_fingerprint,
    };
    Ok((header, sections))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode_snapshot(0x1111, 0x2222, &[(1, b"alpha"), (7, b""), (2, b"beta")])
    }

    #[test]
    fn snapshot_roundtrips() {
        let bytes = sample();
        let (header, sections) = decode_snapshot(&bytes).expect("decodes");
        assert_eq!(
            header,
            SnapshotHeader {
                version: FORMAT_VERSION,
                config_fingerprint: 0x1111,
                world_fingerprint: 0x2222,
            }
        );
        assert_eq!(
            sections,
            vec![(1u16, &b"alpha"[..]), (7, &b""[..]), (2, &b"beta"[..])]
        );
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode_snapshot(0, 0, &[]);
        let (header, sections) = decode_snapshot(&bytes).expect("decodes");
        assert_eq!(header.version, FORMAT_VERSION);
        assert!(sections.is_empty());
    }

    #[test]
    fn wrong_magic_is_bad_magic() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        assert_eq!(decode_snapshot(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn version_bump_is_version_mismatch_even_with_a_stale_checksum() {
        let mut bytes = sample();
        // Bump the version in place; the checksum is now stale too, but the
        // version check must win.
        bytes[8] = 2;
        assert_eq!(
            decode_snapshot(&bytes),
            Err(CheckpointError::VersionMismatch {
                found: 2,
                expected: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn bit_flip_is_checksum_mismatch() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let result = decode_snapshot(&bytes[..cut]);
            assert!(
                matches!(
                    result,
                    Err(CheckpointError::Truncated)
                        | Err(CheckpointError::BadMagic)
                        | Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "cut at {cut}: {result:?}"
            );
        }
    }
}

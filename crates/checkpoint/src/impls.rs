//! [`Checkpointable`] implementations for the workspace's incremental
//! monitor state: addresses and prefixes, probe records, pacers and virtual
//! queues, target streams, density/rotation/tracking state, watch revisions
//! and the telemetry deterministic tier.
//!
//! Everything here encodes through public accessors (or `checkpoint_parts`
//! pairs added for this purpose), so the owning crates keep their fields
//! private and the codec stays in one place. Enum variants are encoded as
//! explicit `u8` tags — never discriminant casts — so reordering a Rust enum
//! can't silently change the wire format.

use std::net::Ipv6Addr;

use scent_core::rotation_detect::{ChangeKind, ChangedTarget};
use scent_core::tracker::Sighting;
use scent_core::{
    DensityAccumulator, Eui64, IncrementalTracker, Ipv6Prefix, RotationEvent, WatchRevision,
    WindowedRotationDetector,
};
use scent_ipv6::wire::DestUnreachableCode;
use scent_ipv6::{addr_from_u128, addr_to_u128};
use scent_prober::{
    FeedbackPacer, QueueModel, QueuePacer, ResponseRecord, TargetStream, VirtualQueue,
};
use scent_simnet::{ReplyKind, SimDuration, SimTime};
use scent_telemetry::{
    DeterministicSnapshot, EventKind, Histogram, TelemetryEvent, WindowStats, LATENCY_BOUNDS_SECS,
};

use crate::codec::{Checkpointable, Reader, Writer};
use crate::error::CheckpointError;

impl Checkpointable for Ipv6Addr {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(addr_to_u128(*self));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(addr_from_u128(r.u128()?))
    }
}

impl Checkpointable for Ipv6Prefix {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(self.network_bits());
        w.put_u8(self.len());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let bits = r.u128()?;
        let len = r.u8()?;
        Ipv6Prefix::from_bits(bits, len).map_err(|_| CheckpointError::InvalidValue("prefix length"))
    }
}

impl Checkpointable for Eui64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Eui64(r.u64()?))
    }
}

impl Checkpointable for SimTime {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(SimTime(r.u64()?))
    }
}

impl Checkpointable for SimDuration {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(SimDuration(r.u64()?))
    }
}

impl Checkpointable for ReplyKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            ReplyKind::EchoReply => w.put_u8(0),
            ReplyKind::DestinationUnreachable(code) => {
                w.put_u8(1);
                w.put_u8(code.value());
            }
            ReplyKind::TimeExceeded => w.put_u8(2),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.u8()? {
            0 => ReplyKind::EchoReply,
            1 => ReplyKind::DestinationUnreachable(
                DestUnreachableCode::from_value(r.u8()?)
                    .map_err(|_| CheckpointError::InvalidValue("dest-unreachable code"))?,
            ),
            2 => ReplyKind::TimeExceeded,
            _ => return Err(CheckpointError::InvalidValue("reply kind")),
        })
    }
}

impl Checkpointable for ResponseRecord {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(ResponseRecord {
            source: Ipv6Addr::decode(r)?,
            kind: ReplyKind::decode(r)?,
        })
    }
}

impl Checkpointable for Sighting {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.seq);
        self.address.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Sighting {
            seq: r.u64()?,
            address: Ipv6Addr::decode(r)?,
        })
    }
}

impl Checkpointable for DensityAccumulator {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.probes);
        self.uniques.encode(w);
        w.put_bool(self.responded);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DensityAccumulator {
            probes: r.u64()?,
            uniques: Checkpointable::decode(r)?,
            responded: r.bool()?,
        })
    }
}

impl Checkpointable for ChangeKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ChangeKind::EuiToDifferentEui => 0,
            ChangeKind::EuiToNothing => 1,
            ChangeKind::NothingToEui => 2,
            ChangeKind::EuiToOtherKind => 3,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.u8()? {
            0 => ChangeKind::EuiToDifferentEui,
            1 => ChangeKind::EuiToNothing,
            2 => ChangeKind::NothingToEui,
            3 => ChangeKind::EuiToOtherKind,
            _ => return Err(CheckpointError::InvalidValue("change kind")),
        })
    }
}

impl Checkpointable for ChangedTarget {
    fn encode(&self, w: &mut Writer) {
        self.target.encode(w);
        self.first.encode(w);
        self.second.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(ChangedTarget {
            target: Ipv6Addr::decode(r)?,
            first: Checkpointable::decode(r)?,
            second: Checkpointable::decode(r)?,
            kind: ChangeKind::decode(r)?,
        })
    }
}

impl Checkpointable for RotationEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.window);
        w.put_u64(self.seq);
        self.change.encode(w);
        self.prefix_48.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(RotationEvent {
            window: r.u64()?,
            seq: r.u64()?,
            change: ChangedTarget::decode(r)?,
            prefix_48: Ipv6Prefix::decode(r)?,
        })
    }
}

impl Checkpointable for WatchRevision {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.admitted.encode(w);
        self.evicted.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(WatchRevision {
            epoch: r.u64()?,
            admitted: Checkpointable::decode(r)?,
            evicted: Checkpointable::decode(r)?,
        })
    }
}

impl Checkpointable for WindowedRotationDetector {
    fn encode(&self, w: &mut Writer) {
        self.last_observations().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(WindowedRotationDetector::from_last_observations(
            Checkpointable::decode(r)?,
        ))
    }
}

impl Checkpointable for IncrementalTracker {
    fn encode(&self, w: &mut Writer) {
        let (sightings, probes, moves) = self.checkpoint_parts();
        sightings.encode(w);
        probes.encode(w);
        moves.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(IncrementalTracker::from_checkpoint_parts(
            Checkpointable::decode(r)?,
            Checkpointable::decode(r)?,
            Checkpointable::decode(r)?,
        ))
    }
}

impl Checkpointable for QueueModel {
    fn encode(&self, w: &mut Writer) {
        self.drain_rate.encode(w);
        w.put_u64(self.high_watermark);
        w.put_u64(self.low_watermark);
        self.per_shard_drain.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let model = QueueModel {
            drain_rate: Checkpointable::decode(r)?,
            high_watermark: r.u64()?,
            low_watermark: r.u64()?,
            per_shard_drain: Checkpointable::decode(r)?,
        };
        if !model.is_valid() {
            return Err(CheckpointError::InvalidValue("queue watermarks"));
        }
        Ok(model)
    }
}

impl Checkpointable for FeedbackPacer {
    fn encode(&self, w: &mut Writer) {
        let (base_pps, current_pps, min_pps, cursor, sent_in_second) = self.checkpoint_parts();
        w.put_u64(base_pps);
        w.put_u64(current_pps);
        w.put_u64(min_pps);
        cursor.encode(w);
        w.put_u64(sent_in_second);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let base_pps = r.u64()?;
        let current_pps = r.u64()?;
        let min_pps = r.u64()?;
        let cursor = SimTime::decode(r)?;
        let sent_in_second = r.u64()?;
        if base_pps == 0 || current_pps == 0 || min_pps == 0 {
            return Err(CheckpointError::InvalidValue("pacer rate"));
        }
        Ok(FeedbackPacer::from_checkpoint_parts((
            base_pps,
            current_pps,
            min_pps,
            cursor,
            sent_in_second,
        )))
    }
}

impl Checkpointable for VirtualQueue {
    fn encode(&self, w: &mut Writer) {
        let (enqueued, epoch) = self.checkpoint_parts();
        w.put_u64(enqueued);
        epoch.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let enqueued = r.u64()?;
        let epoch = SimTime::decode(r)?;
        Ok(VirtualQueue::from_checkpoint_parts((enqueued, epoch)))
    }
}

impl Checkpointable for QueuePacer {
    fn encode(&self, w: &mut Writer) {
        let (pacer, model, queues) = self.checkpoint_parts();
        pacer.encode(w);
        model.encode(w);
        w.put_usize(queues.len());
        for queue in queues {
            queue.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let pacer = FeedbackPacer::decode(r)?;
        let model = QueueModel::decode(r)?;
        let queues: Vec<VirtualQueue> = Checkpointable::decode(r)?;
        if queues.is_empty() {
            return Err(CheckpointError::InvalidValue("queue pacer shard count"));
        }
        Ok(QueuePacer::from_checkpoint_parts(pacer, model, queues))
    }
}

impl Checkpointable for TargetStream {
    fn encode(&self, w: &mut Writer) {
        let (targets, order, window, base_window, pos, offset, step) = self.checkpoint_parts();
        w.put_usize(targets.len());
        for target in targets {
            target.encode(w);
        }
        w.put_usize(order.len());
        for index in order {
            w.put_u64(*index);
        }
        w.put_u64(window);
        w.put_u64(base_window);
        w.put_usize(pos);
        w.put_usize(offset);
        w.put_usize(step);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let targets: Vec<Ipv6Addr> = Checkpointable::decode(r)?;
        let order: Vec<u64> = Checkpointable::decode(r)?;
        if order.len() != targets.len() || order.iter().any(|&i| i as usize >= targets.len().max(1))
        {
            return Err(CheckpointError::InvalidValue("target stream order"));
        }
        let window = r.u64()?;
        let base_window = r.u64()?;
        let pos = r.usize()?;
        let offset = r.usize()?;
        let step = r.usize()?;
        if step == 0 {
            return Err(CheckpointError::InvalidValue("target stream stride"));
        }
        Ok(TargetStream::from_checkpoint_parts(
            targets,
            order,
            window,
            base_window,
            pos,
            offset,
            step,
        ))
    }
}

impl Checkpointable for Histogram {
    fn encode(&self, w: &mut Writer) {
        for count in self.bucket_counts() {
            w.put_u64(*count);
        }
        w.put_u64(self.sum());
        w.put_u64(self.count());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let counts: [u64; LATENCY_BOUNDS_SECS.len() + 1] = Checkpointable::decode(r)?;
        let sum = r.u64()?;
        let count = r.u64()?;
        Ok(Histogram::from_parts(counts, sum, count))
    }
}

impl Checkpointable for WindowStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.window);
        w.put_u64(self.observations);
        w.put_u64(self.responses);
        self.first_send.encode(w);
        self.last_send.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(WindowStats {
            window: r.u64()?,
            observations: r.u64()?,
            responses: r.u64()?,
            first_send: SimTime::decode(r)?,
            last_send: SimTime::decode(r)?,
        })
    }
}

impl Checkpointable for EventKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            EventKind::WindowClose {
                observations,
                responses,
                first_send,
            } => {
                w.put_u8(0);
                w.put_u64(*observations);
                w.put_u64(*responses);
                first_send.encode(w);
            }
            EventKind::PhaseClose { phase, probes } => {
                w.put_u8(1);
                w.put_str(phase);
                w.put_u64(*probes);
            }
            EventKind::RateBackoff { from_pps, to_pps } => {
                w.put_u8(2);
                w.put_u64(*from_pps);
                w.put_u64(*to_pps);
            }
            EventKind::RateRecovery { from_pps, to_pps } => {
                w.put_u8(3);
                w.put_u64(*from_pps);
                w.put_u64(*to_pps);
            }
            EventKind::EpochClose {
                admitted,
                evicted,
                watch_len,
                expansion_probes,
            } => {
                w.put_u8(4);
                admitted.encode(w);
                evicted.encode(w);
                w.put_usize(*watch_len);
                w.put_u64(*expansion_probes);
            }
            EventKind::WatchExhausted => {
                w.put_u8(5);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.u8()? {
            0 => EventKind::WindowClose {
                observations: r.u64()?,
                responses: r.u64()?,
                first_send: SimTime::decode(r)?,
            },
            1 => {
                // `phase` is a `&'static str` in the event journal; decode by
                // interning against the pipeline's known phase names.
                let phase = match r.str()? {
                    "expansion" => "expansion",
                    "density" => "density",
                    "detection" => "detection",
                    _ => return Err(CheckpointError::InvalidValue("phase name")),
                };
                EventKind::PhaseClose {
                    phase,
                    probes: r.u64()?,
                }
            }
            2 => EventKind::RateBackoff {
                from_pps: r.u64()?,
                to_pps: r.u64()?,
            },
            3 => EventKind::RateRecovery {
                from_pps: r.u64()?,
                to_pps: r.u64()?,
            },
            4 => EventKind::EpochClose {
                admitted: Checkpointable::decode(r)?,
                evicted: Checkpointable::decode(r)?,
                watch_len: r.usize()?,
                expansion_probes: r.u64()?,
            },
            5 => EventKind::WatchExhausted,
            _ => return Err(CheckpointError::InvalidValue("event kind")),
        })
    }
}

impl Checkpointable for TelemetryEvent {
    fn encode(&self, w: &mut Writer) {
        self.virtual_time.encode(w);
        w.put_u64(self.window);
        w.put_u64(self.epoch);
        self.shard.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(TelemetryEvent {
            virtual_time: SimTime::decode(r)?,
            window: r.u64()?,
            epoch: r.u64()?,
            shard: Checkpointable::decode(r)?,
            kind: EventKind::decode(r)?,
        })
    }
}

impl Checkpointable for DeterministicSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.observations);
        w.put_u64(self.responses);
        w.put_u64(self.expansion_probes);
        w.put_u64(self.rate_backoffs);
        w.put_u64(self.rate_recoveries);
        w.put_u64(self.queue_high_water);
        w.put_u64(self.epochs);
        w.put_u64(self.admitted);
        w.put_u64(self.evicted);
        self.windows.encode(w);
        self.window_latency.encode(w);
        self.events.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DeterministicSnapshot {
            observations: r.u64()?,
            responses: r.u64()?,
            expansion_probes: r.u64()?,
            rate_backoffs: r.u64()?,
            rate_recoveries: r.u64()?,
            queue_high_water: r.u64()?,
            epochs: r.u64()?,
            admitted: r.u64()?,
            evicted: r.u64()?,
            windows: Checkpointable::decode(r)?,
            window_latency: Histogram::decode(r)?,
            events: Checkpointable::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_value, encode_value};

    fn roundtrip<T: Checkpointable + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_value(&value);
        let back: T = decode_value(&bytes).expect("roundtrip decodes");
        assert_eq!(back, value);
    }

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn prefix(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn address_types_roundtrip() {
        roundtrip(addr("2001:db8::1"));
        roundtrip(prefix("2001:db8:40::/48"));
        roundtrip(Ipv6Prefix::ALL);
        roundtrip(Eui64(0x0250_56ff_fe00_1234));
        roundtrip(SimTime::at(3, 7));
        roundtrip(SimDuration::from_days(2));
    }

    #[test]
    fn reply_kinds_roundtrip() {
        roundtrip(ReplyKind::EchoReply);
        roundtrip(ReplyKind::TimeExceeded);
        roundtrip(ReplyKind::DestinationUnreachable(
            DestUnreachableCode::AddressUnreachable,
        ));
        roundtrip(ResponseRecord {
            source: addr("2001:db8::2"),
            kind: ReplyKind::EchoReply,
        });
    }

    #[test]
    fn invalid_enum_tags_are_typed_errors() {
        assert_eq!(
            decode_value::<ReplyKind>(&[9]),
            Err(CheckpointError::InvalidValue("reply kind"))
        );
        assert_eq!(
            decode_value::<ChangeKind>(&[9]),
            Err(CheckpointError::InvalidValue("change kind"))
        );
        assert_eq!(
            decode_value::<ReplyKind>(&[1, 200]),
            Err(CheckpointError::InvalidValue("dest-unreachable code"))
        );
        // A prefix length over 128 can't be represented.
        let mut w = Writer::new();
        w.put_u128(0);
        w.put_u8(200);
        assert_eq!(
            decode_value::<Ipv6Prefix>(&w.into_bytes()),
            Err(CheckpointError::InvalidValue("prefix length"))
        );
    }

    #[test]
    fn density_accumulator_roundtrips() {
        let mut acc = DensityAccumulator::new();
        acc.probes = 17;
        acc.responded = true;
        acc.uniques.insert(Eui64(5));
        acc.uniques.insert(Eui64(9));
        roundtrip(acc);
    }

    #[test]
    fn rotation_state_roundtrips() {
        let change = ChangedTarget {
            target: addr("2001:db8:40::1"),
            first: Some(addr("2001:db8:40::aa")),
            second: None,
            kind: ChangeKind::EuiToNothing,
        };
        roundtrip(change);
        roundtrip(RotationEvent {
            window: 3,
            seq: 99,
            change,
            prefix_48: prefix("2001:db8:40::/48"),
        });

        let mut detector = WindowedRotationDetector::new();
        detector.observe(0, 0, addr("2001:db8:40::1"), Some(addr("2001:db8:40::aa")));
        detector.observe(1, 4, addr("2001:db8:40::1"), None);
        let bytes = encode_value(&detector);
        let back: WindowedRotationDetector = decode_value(&bytes).unwrap();
        assert_eq!(back.last_observations(), detector.last_observations());
    }

    #[test]
    fn tracker_roundtrips_including_continued_behaviour() {
        let mut tracker = IncrementalTracker::new();
        tracker.observe(0, 1, addr("2001:db8:40::1"), Some(addr("2001:db8:40::aa")));
        tracker.observe(
            1,
            2,
            addr("2001:db8:40::1"),
            Some(addr("2001:db8:40:0:0250:56ff:fe00:1234")),
        );
        let bytes = encode_value(&tracker);
        let mut back: IncrementalTracker = decode_value(&bytes).unwrap();
        assert_eq!(back.checkpoint_parts().0, tracker.checkpoint_parts().0);
        assert_eq!(back.checkpoint_parts().1, tracker.checkpoint_parts().1);
        // The restored tracker keeps accumulating identically.
        back.observe(2, 3, addr("2001:db8:40::2"), None);
        tracker.observe(2, 3, addr("2001:db8:40::2"), None);
        assert_eq!(back.checkpoint_parts().1, tracker.checkpoint_parts().1);
    }

    #[test]
    fn watch_revision_roundtrips() {
        roundtrip(WatchRevision {
            epoch: 4,
            admitted: vec![prefix("2001:db8:41::/48")],
            evicted: vec![prefix("2001:db8:42::/48"), prefix("2001:db8:43::/48")],
        });
    }

    #[test]
    fn pacing_state_roundtrips() {
        roundtrip(QueueModel::unbounded());
        roundtrip(QueueModel {
            high_watermark: 9,
            low_watermark: 3,
            ..QueueModel::per_shard_drain([4, 5])
        });

        let mut pacer = FeedbackPacer::new(SimTime::at(1, 1), 64);
        for _ in 0..100 {
            pacer.next_send_time();
        }
        pacer.on_backpressure();
        roundtrip(pacer);

        let mut queue = VirtualQueue::new(SimTime::at(1, 1));
        queue.enqueue();
        roundtrip(queue);

        let mut queued = QueuePacer::new(SimTime::at(1, 1), 64, 3, QueueModel::with_drain_rate(2));
        for i in 0..500u64 {
            queued.pace((i % 3) as usize);
        }
        roundtrip(queued);
    }

    #[test]
    fn invalid_pacing_state_is_a_typed_error() {
        let mut w = Writer::new();
        // drain_rate: None, high == low watermarks, no per-shard overrides.
        Option::<u64>::None.encode(&mut w);
        w.put_u64(4);
        w.put_u64(4);
        Vec::<u64>::new().encode(&mut w);
        assert_eq!(
            decode_value::<QueueModel>(&w.into_bytes()),
            Err(CheckpointError::InvalidValue("queue watermarks"))
        );
    }

    #[test]
    fn target_stream_roundtrips_mid_window() {
        let generator = scent_prober::TargetGenerator::new(5);
        let candidates = [prefix("2001:db8:1::/48")];
        let mut stream = scent_prober::TargetStream::new(&generator, &candidates, 56, 77, true)
            .starting_at_window(4)
            .slice(1, 3);
        for _ in 0..50 {
            stream.next_target().unwrap();
        }
        let bytes = encode_value(&stream);
        let mut back: TargetStream = decode_value(&bytes).unwrap();
        for i in 0..200 {
            assert_eq!(back.next_target(), stream.next_target(), "draw {i}");
        }
    }

    #[test]
    fn telemetry_tier_roundtrips() {
        let mut histogram = Histogram::new();
        histogram.observe(2);
        histogram.observe(100_000);
        roundtrip(histogram.clone());

        let window = WindowStats {
            window: 6,
            observations: 128,
            responses: 40,
            first_send: SimTime::at(6, 0),
            last_send: SimTime::at(6, 13),
        };
        roundtrip(window.clone());

        let events = vec![
            TelemetryEvent {
                virtual_time: SimTime::at(6, 13),
                window: 6,
                epoch: 1,
                shard: None,
                kind: EventKind::WindowClose {
                    observations: 128,
                    responses: 40,
                    first_send: SimTime::at(6, 0),
                },
            },
            TelemetryEvent {
                virtual_time: SimTime::at(6, 14),
                window: 6,
                epoch: 1,
                shard: Some(2),
                kind: EventKind::PhaseClose {
                    phase: "density",
                    probes: 12,
                },
            },
            TelemetryEvent {
                virtual_time: SimTime::at(6, 15),
                window: 6,
                epoch: 1,
                shard: None,
                kind: EventKind::RateBackoff {
                    from_pps: 64,
                    to_pps: 32,
                },
            },
            TelemetryEvent {
                virtual_time: SimTime::at(7, 0),
                window: 7,
                epoch: 1,
                shard: None,
                kind: EventKind::EpochClose {
                    admitted: vec![prefix("2001:db8:44::/48")],
                    evicted: vec![],
                    watch_len: 5,
                    expansion_probes: 99,
                },
            },
            TelemetryEvent {
                virtual_time: SimTime::at(7, 1),
                window: 7,
                epoch: 1,
                shard: None,
                kind: EventKind::WatchExhausted,
            },
        ];
        for event in &events {
            roundtrip(event.clone());
        }

        roundtrip(DeterministicSnapshot {
            observations: 1_000,
            responses: 300,
            expansion_probes: 99,
            rate_backoffs: 1,
            rate_recoveries: 2,
            queue_high_water: 17,
            epochs: 2,
            admitted: 1,
            evicted: 0,
            windows: vec![window],
            window_latency: histogram,
            events,
        });
    }

    #[test]
    fn unknown_phase_name_is_a_typed_error() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_str("warmup");
        w.put_u64(3);
        assert_eq!(
            decode_value::<EventKind>(&w.into_bytes()),
            Err(CheckpointError::InvalidValue("phase name"))
        );
    }
}

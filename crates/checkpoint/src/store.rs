//! Where snapshot bytes go: the sink trait and the crash-safe file store.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::CheckpointError;

/// A destination for encoded snapshots, called by the monitor at epoch
/// boundaries.
///
/// `epoch` is the index of the *next* epoch to run — i.e. the snapshot
/// captures the state after `epoch` epochs completed, and resuming from it
/// continues at epoch `epoch`.
pub trait CheckpointSink {
    /// Persist one snapshot. The bytes are complete and self-validating
    /// (framed by [`encode_snapshot`](crate::encode_snapshot)).
    fn store(&mut self, epoch: u64, bytes: &[u8]) -> Result<(), CheckpointError>;
}

/// A crash-safe single-file store: every snapshot is written to a `.tmp`
/// sibling and atomically renamed over the target path, so the file on disk
/// is always a complete snapshot — either the previous one or the new one,
/// never a torn write.
#[derive(Debug, Clone)]
pub struct FileCheckpointStore {
    path: PathBuf,
}

impl FileCheckpointStore {
    /// A store writing to `path`. Nothing is created until the first
    /// [`CheckpointSink::store`] call.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileCheckpointStore { path: path.into() }
    }

    /// The path snapshots are renamed into.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read the latest complete snapshot back.
    pub fn load(&self) -> Result<Vec<u8>, CheckpointError> {
        fs::read(&self.path).map_err(|err| CheckpointError::Io {
            kind: err.kind(),
            path: self.path.display().to_string(),
        })
    }

    fn tmp_path(&self) -> PathBuf {
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        self.path.with_file_name(name)
    }
}

impl CheckpointSink for FileCheckpointStore {
    fn store(&mut self, _epoch: u64, bytes: &[u8]) -> Result<(), CheckpointError> {
        let tmp = self.tmp_path();
        let io_err = |err: std::io::Error, path: &Path| CheckpointError::Io {
            kind: err.kind(),
            path: path.display().to_string(),
        };
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(e, &tmp))?;
        file.write_all(bytes).map_err(|e| io_err(e, &tmp))?;
        file.sync_all().map_err(|e| io_err(e, &tmp))?;
        drop(file);
        fs::rename(&tmp, &self.path).map_err(|e| io_err(e, &self.path))
    }
}

/// An in-memory sink recording every snapshot it is handed — the test
/// harness for suspend/resume scenarios.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    snapshots: Vec<(u64, Vec<u8>)>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every `(epoch, bytes)` pair stored so far, in store order.
    pub fn all(&self) -> &[(u64, Vec<u8>)] {
        &self.snapshots
    }

    /// The most recently stored snapshot, if any.
    pub fn latest(&self) -> Option<&(u64, Vec<u8>)> {
        self.snapshots.last()
    }

    /// The stored snapshot for the given epoch index, if any.
    pub fn at_epoch(&self, epoch: u64) -> Option<&[u8]> {
        self.snapshots
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, bytes)| bytes.as_slice())
    }
}

impl CheckpointSink for MemorySink {
    fn store(&mut self, epoch: u64, bytes: &[u8]) -> Result<(), CheckpointError> {
        self.snapshots.push((epoch, bytes.to_vec()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scent-checkpoint-store-{tag}-{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn file_store_roundtrips_and_overwrites() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("monitor.ckpt");
        let mut store = FileCheckpointStore::new(&path);
        store.store(0, b"first").expect("store first");
        assert_eq!(store.load().expect("load"), b"first");
        store.store(1, b"second snapshot").expect("store second");
        assert_eq!(store.load().expect("load"), b"second snapshot");
        // The tmp sibling never survives a successful store.
        assert!(!store.tmp_path().exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let dir = scratch_dir("missing");
        let store = FileCheckpointStore::new(dir.join("never-written.ckpt"));
        match store.load() {
            Err(CheckpointError::Io { kind, path }) => {
                assert_eq!(kind, std::io::ErrorKind::NotFound);
                assert!(path.contains("never-written.ckpt"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_path_is_a_typed_io_error() {
        let mut store = FileCheckpointStore::new("/nonexistent-dir-scent/x.ckpt");
        assert!(matches!(
            store.store(0, b"bytes"),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemorySink::new();
        sink.store(0, b"a").expect("infallible");
        sink.store(1, b"b").expect("infallible");
        assert_eq!(sink.all().len(), 2);
        assert_eq!(sink.latest().map(|(e, _)| *e), Some(1));
        assert_eq!(sink.at_epoch(0), Some(&b"a"[..]));
        assert_eq!(sink.at_epoch(7), None);
    }
}

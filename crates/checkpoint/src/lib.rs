//! Crash-safe checkpoint/restore for the streaming rotation monitor.
//!
//! A long-running monitoring campaign — weeks of virtual time, millions of
//! probes — should survive being killed. This crate provides the pieces:
//!
//! * [`Checkpointable`] — a hand-rolled binary codec trait (`encode` into a
//!   [`Writer`], `decode` from a [`Reader`]) implemented here for every kind
//!   of incremental monitor state: classifiers, density accumulators, the
//!   incremental tracker, rotation detectors, pacer and virtual-queue
//!   trajectories, target-stream cursors, watch-list revisions and the
//!   telemetry deterministic tier.
//! * [`encode_snapshot`] / [`decode_snapshot`] — the versioned container
//!   format: magic, format version, config/world fingerprints, tagged
//!   length-prefixed sections, and a trailing FNV-1a checksum. Corrupt or
//!   mismatched input decodes to a typed [`CheckpointError`], never a panic.
//! * [`CheckpointSink`] — where snapshots go: [`FileCheckpointStore`] writes
//!   atomically (write to a temp file, fsync, rename) so a crash mid-write
//!   leaves the previous checkpoint intact; [`MemorySink`] keeps every
//!   snapshot for tests.
//!
//! The streaming engine (`scent-stream`) calls into this crate at epoch
//! boundaries and resumes from a decoded snapshot; the contract — enforced
//! by that crate's test suite — is that suspend + restore + continue is
//! **byte-identical** to the uninterrupted run.
//!
//! # Encoding a value
//!
//! ```
//! use scent_checkpoint::{decode_value, encode_value, Checkpointable};
//! use scent_ipv6::Ipv6Prefix;
//!
//! let prefix: Ipv6Prefix = "2001:db8:40::/48".parse().unwrap();
//! let bytes = encode_value(&prefix);
//! let back: Ipv6Prefix = decode_value(&bytes).unwrap();
//! assert_eq!(back, prefix);
//! ```
//!
//! # Snapshot container round trip
//!
//! ```
//! use scent_checkpoint::{
//!     decode_snapshot, encode_snapshot, CheckpointError, FORMAT_VERSION,
//! };
//!
//! let sections: &[(u16, &[u8])] = &[(1, b"alpha"), (2, b"beta")];
//! let bytes = encode_snapshot(0xc0ffee, 0xf00d, sections);
//! let (header, decoded) = decode_snapshot(&bytes).unwrap();
//! assert_eq!(header.version, FORMAT_VERSION);
//! assert_eq!(header.config_fingerprint, 0xc0ffee);
//! assert_eq!(decoded.len(), 2);
//!
//! // A flipped bit is caught by the trailing checksum.
//! let mut corrupt = bytes.clone();
//! let mid = corrupt.len() / 2;
//! corrupt[mid] ^= 0x10;
//! assert!(matches!(
//!     decode_snapshot(&corrupt),
//!     Err(CheckpointError::ChecksumMismatch { .. })
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
mod impls;
mod snapshot;
mod store;

pub use codec::{decode_value, encode_value, fnv1a64, Checkpointable, Reader, Writer};
pub use error::CheckpointError;
pub use snapshot::{
    decode_snapshot, encode_snapshot, SnapshotHeader, SnapshotSections, FORMAT_VERSION, MAGIC,
};
pub use store::{CheckpointSink, FileCheckpointStore, MemorySink};

//! Typed checkpoint failures.
//!
//! Every way a snapshot can be unusable gets its own variant, so callers can
//! distinguish "this file is from a different configuration" (resume with the
//! right config) from "this file is damaged" (fall back to an older
//! checkpoint). Corrupt input must always surface here — never as a panic.

use std::fmt;

/// Why a checkpoint could not be decoded, validated or stored.
///
/// The variants mirror the validation order of
/// [`decode_snapshot`](crate::decode_snapshot): magic, format version,
/// trailing checksum, then section structure. The fingerprint mismatches
/// ([`CheckpointError::ConfigMismatch`], [`CheckpointError::WorldMismatch`])
/// are raised by the *consumer* of a structurally valid snapshot when its
/// header does not match the run being resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input does not start with the checkpoint magic bytes — it is not
    /// a snapshot at all.
    BadMagic,
    /// The snapshot was written by a different (incompatible) format
    /// version.
    VersionMismatch {
        /// The version recorded in the snapshot header.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// The snapshot was taken under a different monitor configuration (or a
    /// different initial watch list) than the run trying to resume from it.
    ConfigMismatch {
        /// The configuration fingerprint recorded in the snapshot header.
        found: u64,
        /// The resuming run's configuration fingerprint.
        expected: u64,
    },
    /// The snapshot was taken against a different world (routing table)
    /// than the run trying to resume from it.
    WorldMismatch {
        /// The world fingerprint recorded in the snapshot header.
        found: u64,
        /// The resuming run's world fingerprint.
        expected: u64,
    },
    /// The input ended before the value being decoded was complete.
    Truncated,
    /// The trailing checksum does not match the snapshot's bytes: the file
    /// was corrupted in place (bit flips, partial overwrite).
    ChecksumMismatch {
        /// The checksum recomputed over the snapshot's bytes.
        found: u64,
        /// The checksum recorded in the snapshot trailer.
        expected: u64,
    },
    /// A field decoded to a value the target type cannot represent (an
    /// unknown enum tag, an out-of-range prefix length, invalid UTF-8). The
    /// payload names the field.
    InvalidValue(&'static str),
    /// A snapshot file could not be read, written or renamed.
    Io {
        /// The failed operation's [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// The path the operation touched.
        path: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint: magic bytes missing")
            }
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} is not the supported version {expected}"
            ),
            CheckpointError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint was taken under configuration fingerprint \
                 {found:#018x}, not this run's {expected:#018x}"
            ),
            CheckpointError::WorldMismatch { found, expected } => write!(
                f,
                "checkpoint was taken against world fingerprint {found:#018x}, \
                 not this run's {expected:#018x}"
            ),
            CheckpointError::Truncated => {
                write!(f, "checkpoint is truncated: input ended mid-value")
            }
            CheckpointError::ChecksumMismatch { found, expected } => write!(
                f,
                "checkpoint is corrupt: checksum {found:#018x} does not match \
                 recorded {expected:#018x}"
            ),
            CheckpointError::InvalidValue(what) => {
                write!(f, "checkpoint field {what} holds an unrepresentable value")
            }
            CheckpointError::Io { kind, path } => {
                write!(f, "checkpoint i/o failed on {path}: {kind}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_renders_a_nonempty_message() {
        let variants = [
            CheckpointError::BadMagic,
            CheckpointError::VersionMismatch {
                found: 2,
                expected: 1,
            },
            CheckpointError::ConfigMismatch {
                found: 1,
                expected: 2,
            },
            CheckpointError::WorldMismatch {
                found: 3,
                expected: 4,
            },
            CheckpointError::Truncated,
            CheckpointError::ChecksumMismatch {
                found: 5,
                expected: 6,
            },
            CheckpointError::InvalidValue("reply kind"),
            CheckpointError::Io {
                kind: std::io::ErrorKind::NotFound,
                path: "/tmp/x.ckpt".into(),
            },
        ];
        for err in variants {
            assert!(!err.to_string().is_empty(), "{err:?}");
        }
    }
}

//! A Routing Information Base: advertised prefix → origin AS.
//!
//! Stands in for the Routeviews global table the paper uses to find the
//! "encompassing BGP prefix" of each EUI-64 response address (Figure 7,
//! Table 2).

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use scent_ipv6::Ipv6Prefix;

use crate::trie::PrefixTrie;
use crate::Asn;

/// A single RIB entry: an advertised prefix originated by an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// The advertised prefix.
    pub prefix: Ipv6Prefix,
    /// The origin AS.
    pub origin: Asn,
}

/// Why a line of a RIB table dump failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RibParseErrorKind {
    /// The first column was not a valid IPv6 prefix.
    BadPrefix,
    /// The second column was not a valid AS number.
    BadAsn,
}

/// A parse failure in [`Rib::from_table_text`], carrying the 1-based line
/// number of the offending entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RibParseError {
    /// The 1-based line number that failed to parse.
    pub line: usize,
    /// What was wrong with it.
    pub kind: RibParseErrorKind,
}

impl std::fmt::Display for RibParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            RibParseErrorKind::BadPrefix => write!(f, "line {}: bad prefix", self.line),
            RibParseErrorKind::BadAsn => write!(f, "line {}: bad ASN", self.line),
        }
    }
}

impl std::error::Error for RibParseError {}

/// A routing information base with longest-prefix-match lookup.
#[derive(Debug, Clone, Default)]
pub struct Rib {
    trie: PrefixTrie<Asn>,
}

impl Rib {
    /// Create an empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of advertised prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the RIB is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Announce a prefix from an origin AS. Returns the previous origin if
    /// the exact prefix was already announced (e.g. an origin change).
    pub fn announce(&mut self, prefix: Ipv6Prefix, origin: Asn) -> Option<Asn> {
        self.trie.insert(prefix, origin)
    }

    /// Withdraw a previously announced prefix.
    pub fn withdraw(&mut self, prefix: &Ipv6Prefix) -> Option<Asn> {
        self.trie.remove(prefix)
    }

    /// The most specific announced prefix covering `addr` and its origin.
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<RibEntry> {
        // longest_match returns the prefix built from the queried address
        // truncated to the matched length, which equals the stored prefix.
        self.trie
            .longest_match(addr)
            .map(|(prefix, &origin)| RibEntry { prefix, origin })
    }

    /// The origin AS for `addr`, if any announced prefix covers it.
    pub fn origin(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.lookup(addr).map(|e| e.origin)
    }

    /// The length of the encompassing BGP prefix for `addr` — the quantity
    /// plotted against inferred rotation-pool sizes in Figure 7.
    pub fn encompassing_prefix_len(&self, addr: Ipv6Addr) -> Option<u8> {
        self.lookup(addr).map(|e| e.prefix.len())
    }

    /// All entries in the RIB.
    pub fn entries(&self) -> Vec<RibEntry> {
        self.trie
            .iter()
            .into_iter()
            .map(|(prefix, &origin)| RibEntry { prefix, origin })
            .collect()
    }

    /// Serialize in a simple `prefix origin-asn` text format, one entry per
    /// line (a stand-in for a Routeviews table dump).
    pub fn to_table_text(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            out.push_str(&format!("{} {}\n", entry.prefix, entry.origin.value()));
        }
        out
    }

    /// Parse the text format produced by [`Rib::to_table_text`]. The first
    /// line that fails to parse is reported in the error.
    pub fn from_table_text(text: &str) -> Result<Self, RibParseError> {
        let mut rib = Rib::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let prefix = parts
                .next()
                .and_then(|p| p.parse::<Ipv6Prefix>().ok())
                .ok_or(RibParseError {
                    line: lineno + 1,
                    kind: RibParseErrorKind::BadPrefix,
                })?;
            let asn = parts
                .next()
                .and_then(|a| a.parse::<u32>().ok())
                .ok_or(RibParseError {
                    line: lineno + 1,
                    kind: RibParseErrorKind::BadAsn,
                })?;
            rib.announce(prefix, Asn(asn));
        }
        Ok(rib)
    }
}

impl FromIterator<RibEntry> for Rib {
    fn from_iter<T: IntoIterator<Item = RibEntry>>(iter: T) -> Self {
        let mut rib = Rib::new();
        for entry in iter {
            rib.announce(entry.prefix, entry.origin);
        }
        rib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_lookup() {
        let mut rib = Rib::new();
        rib.announce(p("2001:16b8::/32"), Asn(8881));
        rib.announce(p("2003:e2::/32"), Asn(3320));
        rib.announce(p("2804:14c::/33"), Asn(28573));

        let entry = rib.lookup("2001:16b8:1d01::1".parse().unwrap()).unwrap();
        assert_eq!(entry.origin, Asn(8881));
        assert_eq!(entry.prefix, p("2001:16b8::/32"));
        assert_eq!(
            rib.encompassing_prefix_len("2804:14c:1::1".parse().unwrap()),
            Some(33)
        );
        assert_eq!(rib.origin("2a02::1".parse().unwrap()), None);
    }

    #[test]
    fn more_specific_wins() {
        let mut rib = Rib::new();
        rib.announce(p("2001:16b8::/32"), Asn(8881));
        rib.announce(p("2001:16b8:8000::/33"), Asn(64500));
        assert_eq!(
            rib.origin("2001:16b8:8000::1".parse().unwrap()),
            Some(Asn(64500))
        );
        assert_eq!(rib.origin("2001:16b8::1".parse().unwrap()), Some(Asn(8881)));
    }

    #[test]
    fn withdraw() {
        let mut rib = Rib::new();
        rib.announce(p("2001:db8::/32"), Asn(1));
        assert_eq!(rib.withdraw(&p("2001:db8::/32")), Some(Asn(1)));
        assert!(rib.lookup("2001:db8::1".parse().unwrap()).is_none());
        assert_eq!(rib.withdraw(&p("2001:db8::/32")), None);
    }

    #[test]
    fn origin_change_is_reported() {
        let mut rib = Rib::new();
        assert_eq!(rib.announce(p("2001:db8::/32"), Asn(1)), None);
        assert_eq!(rib.announce(p("2001:db8::/32"), Asn(2)), Some(Asn(1)));
        assert_eq!(rib.origin("2001:db8::1".parse().unwrap()), Some(Asn(2)));
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn table_text_round_trip() {
        let mut rib = Rib::new();
        rib.announce(p("2001:16b8::/32"), Asn(8881));
        rib.announce(p("2a02:587::/29"), Asn(6799));
        rib.announce(p("240e::/20"), Asn(4134));
        let text = rib.to_table_text();
        let parsed = Rib::from_table_text(&text).unwrap();
        assert_eq!(parsed.entries(), rib.entries());
    }

    #[test]
    fn table_text_parse_errors() {
        assert_eq!(
            Rib::from_table_text("not-a-prefix 123").unwrap_err(),
            RibParseError {
                line: 1,
                kind: RibParseErrorKind::BadPrefix
            }
        );
        let err = Rib::from_table_text("2001:db8::/32 1\n2001:db8::/32 notanasn").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, RibParseErrorKind::BadAsn);
        assert_eq!(err.to_string(), "line 2: bad ASN");
        // Comments and blank lines are fine.
        let rib = Rib::from_table_text("# comment\n\n2001:db8::/32 1\n").unwrap();
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn from_iterator() {
        let rib: Rib = vec![
            RibEntry {
                prefix: p("2001:db8::/32"),
                origin: Asn(1),
            },
            RibEntry {
                prefix: p("2a01::/16"),
                origin: Asn(2),
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(rib.len(), 2);
    }
}

//! A binary trie over IPv6 prefixes with longest-prefix-match lookup.
//!
//! The trie walks address bits from the most significant end; each node can
//! hold a value for the prefix ending at that node. This is the classic
//! unibit trie — not the fastest possible LPM structure, but simple, exactly
//! correct, and fast enough to resolve hundreds of millions of simulated
//! responses (see the `rib_lpm` ablation benchmark, which compares it to a
//! linear scan).

use std::net::Ipv6Addr;

use scent_ipv6::{addr_to_u128, Ipv6Prefix};

/// A binary prefix trie mapping [`Ipv6Prefix`]es to values of type `V`.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }
}

/// Extract bit `i` (0 = most significant) of a 128-bit address.
#[inline]
fn bit(bits: u128, i: u8) -> usize {
    ((bits >> (127 - i)) & 1) as usize
}

impl<V> PrefixTrie<V> {
    /// Create an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value for a prefix, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv6Prefix, value: V) -> Option<V> {
        let bits = prefix.network_bits();
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(bits, i);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::default()));
        }
        let previous = node.value.replace(value);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: &Ipv6Prefix) -> Option<&V> {
        let bits = prefix.network_bits();
        let mut node = &self.root;
        for i in 0..prefix.len() {
            node = node.children[bit(bits, i)].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Remove a prefix, returning its value if present.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<V> {
        let bits = prefix.network_bits();
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            node = node.children[bit(bits, i)].as_deref_mut()?;
        }
        let removed = node.value.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `addr`, along with its value.
    pub fn longest_match(&self, addr: Ipv6Addr) -> Option<(Ipv6Prefix, &V)> {
        let bits = addr_to_u128(addr);
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0u8, v));
        for i in 0..128u8 {
            match node.children[bit(bits, i)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            (
                Ipv6Prefix::from_bits(bits, len).expect("length bounded by 128"),
                v,
            )
        })
    }

    /// All stored prefixes that contain `addr`, from least to most specific.
    pub fn all_matches(&self, addr: Ipv6Addr) -> Vec<(Ipv6Prefix, &V)> {
        let bits = addr_to_u128(addr);
        let mut node = &self.root;
        let mut out = Vec::new();
        if let Some(v) = node.value.as_ref() {
            out.push((Ipv6Prefix::ALL, v));
        }
        for i in 0..128u8 {
            match node.children[bit(bits, i)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = child.value.as_ref() {
                        out.push((
                            Ipv6Prefix::from_bits(bits, i + 1).expect("length bounded"),
                            v,
                        ));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Iterate over all `(prefix, value)` pairs in lexicographic prefix
    /// order.
    pub fn iter(&self) -> Vec<(Ipv6Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::walk(&self.root, 0, 0, &mut out);
        out
    }

    fn walk<'a>(node: &'a Node<V>, bits: u128, depth: u8, out: &mut Vec<(Ipv6Prefix, &'a V)>) {
        if let Some(v) = node.value.as_ref() {
            out.push((
                Ipv6Prefix::from_bits(bits, depth).expect("depth bounded"),
                v,
            ));
        }
        if depth == 128 {
            return;
        }
        if let Some(child) = node.children[0].as_deref() {
            Self::walk(child, bits, depth + 1, out);
        }
        if let Some(child) = node.children[1].as_deref() {
            Self::walk(child, bits | (1u128 << (127 - depth)), depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut trie = PrefixTrie::new();
        assert!(trie.is_empty());
        assert_eq!(trie.insert(p("2001:db8::/32"), 1), None);
        assert_eq!(trie.insert(p("2001:db8::/32"), 2), Some(1));
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get(&p("2001:db8::/32")), Some(&2));
        assert_eq!(trie.get(&p("2001:db8::/48")), None);
        assert_eq!(trie.remove(&p("2001:db8::/32")), Some(2));
        assert!(trie.is_empty());
        assert_eq!(trie.remove(&p("2001:db8::/32")), None);
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("2001:16b8::/32"), "provider");
        trie.insert(p("2001:16b8:100::/46"), "pool");
        trie.insert(p("2001:16b8:101::/48"), "candidate");
        let addr: Ipv6Addr = "2001:16b8:101:42::1".parse().unwrap();
        let (pfx, v) = trie.longest_match(addr).unwrap();
        assert_eq!(pfx, p("2001:16b8:101::/48"));
        assert_eq!(*v, "candidate");

        let addr: Ipv6Addr = "2001:16b8:103::1".parse().unwrap();
        let (pfx, v) = trie.longest_match(addr).unwrap();
        assert_eq!(pfx, p("2001:16b8:100::/46"));
        assert_eq!(*v, "pool");

        let addr: Ipv6Addr = "2001:16b8:ffff::1".parse().unwrap();
        let (pfx, v) = trie.longest_match(addr).unwrap();
        assert_eq!(pfx, p("2001:16b8::/32"));
        assert_eq!(*v, "provider");

        let addr: Ipv6Addr = "2a02::1".parse().unwrap();
        assert!(trie.longest_match(addr).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut trie = PrefixTrie::new();
        trie.insert(Ipv6Prefix::ALL, 0u32);
        let (pfx, v) = trie.longest_match("1234::1".parse().unwrap()).unwrap();
        assert_eq!(pfx, Ipv6Prefix::ALL);
        assert_eq!(*v, 0);
    }

    #[test]
    fn all_matches_orders_by_specificity() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("2001::/16"), 16);
        trie.insert(p("2001:db8::/32"), 32);
        trie.insert(p("2001:db8:0:1::/64"), 64);
        let matches = trie.all_matches("2001:db8:0:1::5".parse().unwrap());
        let lens: Vec<u8> = matches.iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![16, 32, 64]);
    }

    #[test]
    fn iter_returns_all_prefixes() {
        let mut trie = PrefixTrie::new();
        let prefixes = [p("2001:db8::/32"), p("2a01::/16"), p("2001:db8:1::/48")];
        for (i, pfx) in prefixes.iter().enumerate() {
            trie.insert(*pfx, i);
        }
        let entries = trie.iter();
        assert_eq!(entries.len(), 3);
        for pfx in &prefixes {
            assert!(entries.iter().any(|(q, _)| q == pfx));
        }
    }

    #[test]
    fn host_route_128() {
        let mut trie = PrefixTrie::new();
        let host = p("2001:db8::1/128");
        trie.insert(host, "host");
        let (pfx, _) = trie.longest_match("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(pfx, host);
        assert!(trie.longest_match("2001:db8::2".parse().unwrap()).is_none());
    }

    proptest! {
        #[test]
        fn lpm_agrees_with_linear_scan(
            entries in proptest::collection::vec((any::<u128>(), 0u8..=64), 1..40),
            probe in any::<u128>(),
        ) {
            let mut trie = PrefixTrie::new();
            let mut list: Vec<(Ipv6Prefix, usize)> = Vec::new();
            for (i, (bits, len)) in entries.iter().enumerate() {
                let pfx = Ipv6Prefix::from_bits(*bits, *len).unwrap();
                trie.insert(pfx, i);
                // Later inserts replace earlier ones for the same prefix.
                list.retain(|(q, _)| *q != pfx);
                list.push((pfx, i));
            }
            let addr = Ipv6Addr::from(probe);
            let expected = list
                .iter()
                .filter(|(q, _)| q.contains(addr))
                .max_by_key(|(q, _)| q.len())
                .map(|(q, v)| (q.len(), *v));
            let actual = trie.longest_match(addr).map(|(q, v)| (q.len(), *v));
            prop_assert_eq!(actual, expected);
        }

        #[test]
        fn insert_then_get(bits in any::<u128>(), len in 0u8..=128) {
            let mut trie = PrefixTrie::new();
            let pfx = Ipv6Prefix::from_bits(bits, len).unwrap();
            trie.insert(pfx, 42u32);
            prop_assert_eq!(trie.get(&pfx), Some(&42));
            prop_assert_eq!(trie.len(), 1);
        }
    }
}

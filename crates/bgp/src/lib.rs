//! Longest-prefix-match RIB and AS metadata.
//!
//! The paper uses Routeviews BGP snapshots to map EUI-64 response addresses
//! to their encompassing BGP-advertised prefix and origin AS (Figure 7,
//! Table 2). This crate provides the equivalent machinery:
//!
//! * [`PrefixTrie`] — a binary (unibit) trie over IPv6 prefixes supporting
//!   exact insert/lookup and longest-prefix-match, generic over the stored
//!   value.
//! * [`Rib`] — a routing information base mapping advertised prefixes to an
//!   origin [`Asn`], with a text import/export format standing in for a
//!   Routeviews table dump.
//! * [`AsRegistry`] — per-AS metadata (name, country code) used to label the
//!   tables in the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asdb;
pub mod rib;
pub mod trie;

pub use asdb::{AsInfo, AsRegistry, CountryCode};
pub use rib::{Rib, RibEntry, RibParseError, RibParseErrorKind};
pub use trie::PrefixTrie;

use serde::{Deserialize, Serialize};

/// An Autonomous System Number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl Asn {
    /// The numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display() {
        assert_eq!(Asn(8881).to_string(), "AS8881");
        assert_eq!(Asn::from(3320).value(), 3320);
    }
}

//! Per-AS metadata: operator name and country.
//!
//! Table 1 of the paper ranks rotating /48s by ASN *and* by country, and
//! Table 2 lists a country code per tracked device, so the reproduction needs
//! an AS → country mapping alongside the RIB.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Asn;

/// An ISO 3166-1 alpha-2 country code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Construct from a two-letter string. Lower-case input is upper-cased.
    pub fn new(code: &str) -> Option<Self> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return None;
        }
        Some(CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("ASCII by construction")
    }
}

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::str::FromStr for CountryCode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::new(s).ok_or_else(|| format!("invalid country code {s:?}"))
    }
}

/// Metadata about an Autonomous System.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Operator name (e.g. "Versatel", "BH Telecom").
    pub name: String,
    /// Country the operator primarily serves.
    pub country: CountryCode,
}

/// A registry of AS metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsRegistry {
    entries: BTreeMap<u32, AsInfo>,
}

impl AsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register an AS. Replaces and returns any previous entry.
    pub fn insert(&mut self, info: AsInfo) -> Option<AsInfo> {
        self.entries.insert(info.asn.value(), info)
    }

    /// Convenience constructor for an entry.
    pub fn register(&mut self, asn: impl Into<Asn>, name: &str, country: &str) {
        let asn = asn.into();
        self.insert(AsInfo {
            asn,
            name: name.to_string(),
            country: CountryCode::new(country)
                .unwrap_or_else(|| panic!("invalid country code {country:?}")),
        });
    }

    /// Look up an AS.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.entries.get(&asn.value())
    }

    /// The country of an AS, if known.
    pub fn country(&self, asn: Asn) -> Option<CountryCode> {
        self.get(asn).map(|info| info.country)
    }

    /// The name of an AS, if known.
    pub fn name(&self, asn: Asn) -> Option<&str> {
        self.get(asn).map(|info| info.name.as_str())
    }

    /// Iterate over all entries in ASN order.
    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_parsing() {
        assert_eq!(CountryCode::new("de").unwrap().as_str(), "DE");
        assert_eq!(CountryCode::new("DE").unwrap().to_string(), "DE");
        assert!(CountryCode::new("DEU").is_none());
        assert!(CountryCode::new("D1").is_none());
        assert!(CountryCode::new("").is_none());
        assert_eq!("br".parse::<CountryCode>().unwrap().as_str(), "BR");
        assert!("x".parse::<CountryCode>().is_err());
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = AsRegistry::new();
        assert!(reg.is_empty());
        reg.register(8881u32, "Versatel", "DE");
        reg.register(6799u32, "OTE", "GR");
        reg.register(7552u32, "Viettel Group", "VN");
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.name(Asn(8881)), Some("Versatel"));
        assert_eq!(reg.country(Asn(6799)).unwrap().as_str(), "GR");
        assert_eq!(reg.get(Asn(9999)), None);
        let asns: Vec<u32> = reg.iter().map(|i| i.asn.value()).collect();
        assert_eq!(asns, vec![6799, 7552, 8881]);
    }

    #[test]
    fn insert_replaces() {
        let mut reg = AsRegistry::new();
        reg.register(1u32, "Old", "US");
        let previous = reg.insert(AsInfo {
            asn: Asn(1),
            name: "New".into(),
            country: CountryCode::new("US").unwrap(),
        });
        assert_eq!(previous.unwrap().name, "Old");
        assert_eq!(reg.name(Asn(1)), Some("New"));
    }

    #[test]
    #[should_panic(expected = "invalid country code")]
    fn register_panics_on_bad_country() {
        let mut reg = AsRegistry::new();
        reg.register(1u32, "Broken", "XYZ");
    }
}

//! Discovery configuration: every knob the confidence-split prefix tree
//! evolves under, integer-valued so configurations stay `Eq`-comparable and
//! checkpoint-fingerprintable.

use serde::{Deserialize, Serialize};

use scent_checkpoint::Writer;

use crate::blocklist::Blocklist;
use crate::confidence::{wilson_lower, wilson_upper};

/// Configuration of the adaptive discovery tree.
///
/// All thresholds are integers (counts, or rates in permille); the Wilson
/// arithmetic happens in `f64` internally but never enters the
/// configuration, so `DiscoveryConfig` derives `Eq` and participates in the
/// monitor's checkpoint config fingerprint field by field.
///
/// The defaults are tuned for announcement-rooted discovery of scaled-down
/// worlds (/32 announcements, /48 bands, /56 customer delegations): a single
/// EUI-64 hit is enough to split toward the responding /48, four clean
/// answers certify a /48 dense, sixteen silent probes certify a node quiet.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Probe budget per epoch boundary, shared by every frontier node across
    /// all [`DiscoveryConfig::rounds`]. Must be non-zero.
    pub probe_budget: u64,
    /// Plan→probe→fold rounds per boundary. With two rounds (the default) a
    /// hit found by the first round's coarse sweep splits the tree down to
    /// the responding /48 and the second round already probes that /48 to
    /// dense-confidence — discovery converges within a single boundary
    /// instead of leaking an epoch per tree level. Must be non-zero.
    pub rounds: u32,
    /// Bits added per tree level: a split materializes `2^branch_bits`
    /// children (nibble steps by default, /32 → /36 → /40 → /44 → /48),
    /// clamped so no node is ever longer than /48.
    pub branch_bits: u8,
    /// Hits at which a node (shorter than /48) splits. In announcement-scale
    /// sparse space a rate threshold can never fire — one hit in a 4096-probe
    /// sweep rounds to a zero rate — so splitting triggers on the count
    /// alone, and the hit's /48 attribution cascades the split all the way
    /// down in one rebalance.
    pub split_hits: u64,
    /// Dense certificate: a /48 leaf with at least
    /// [`DiscoveryConfig::dense_min_probes`] trials whose Wilson *lower*
    /// bound reaches this rate (permille) becomes a watch-list candidate.
    pub dense_permille: u16,
    /// Minimum trials before the dense certificate can fire.
    pub dense_min_probes: u64,
    /// Quiet certificate: a leaf with at least
    /// [`DiscoveryConfig::merge_min_probes`] trials whose Wilson *upper*
    /// bound is below this rate (permille) is confidently quiet — it stops
    /// drawing budget, and an internal node whose children are all quiet
    /// merges back to a leaf.
    pub merge_permille: u16,
    /// Minimum trials before the quiet certificate can fire.
    pub merge_min_probes: u64,
    /// Wilson critical value, permille (1960 ≈ 95% two-sided).
    pub z_permille: u16,
    /// Evidence half-life, as a per-boundary right-shift of every count
    /// (1 = halve each boundary). Decay is what lets the tree re-open
    /// certificates over a *moving* occupancy band: a /48 the band left
    /// decays from dense through unclassified to quiet, and a quiet sibling
    /// the band enters is still being re-swept because its certificate
    /// decayed too. `0` disables decay (evidence accumulates forever).
    pub decay_shift: u8,
    /// Prefixes excluded from all probing. Consulted by the detection-phase
    /// target stream, the boundary re-expansion and the discovery sweep
    /// before any probe is emitted.
    pub blocklist: Blocklist,
}

impl DiscoveryConfig {
    /// The tuned defaults described on the type.
    pub fn paper_scale() -> Self {
        DiscoveryConfig {
            probe_budget: 4096,
            rounds: 2,
            branch_bits: 4,
            split_hits: 1,
            dense_permille: 500,
            dense_min_probes: 4,
            merge_permille: 200,
            merge_min_probes: 16,
            z_permille: 1960,
            decay_shift: 1,
            blocklist: Blocklist::default(),
        }
    }

    /// Whether `(hits, trials)` certify a dense prefix.
    pub fn is_dense(&self, hits: u64, trials: u64) -> bool {
        trials >= self.dense_min_probes
            && wilson_lower(hits, trials, self.z_permille)
                >= f64::from(self.dense_permille) / 1000.0
    }

    /// Whether `(hits, trials)` certify a quiet prefix.
    pub fn is_quiet(&self, hits: u64, trials: u64) -> bool {
        trials >= self.merge_min_probes
            && wilson_upper(hits, trials, self.z_permille)
                <= f64::from(self.merge_permille) / 1000.0
    }

    /// The budget-allocation weight of a leaf holding `(hits, trials)`: zero
    /// once either certificate holds (nothing left to learn), the optimistic
    /// Wilson upper bound otherwise — unprobed nodes weigh 1.0 and outrank
    /// everything, mostly-silent nodes fade as their upper bound collapses.
    pub fn gain_weight(&self, hits: u64, trials: u64) -> f64 {
        if self.is_dense(hits, trials) || self.is_quiet(hits, trials) {
            0.0
        } else {
            wilson_upper(hits, trials, self.z_permille)
        }
    }

    /// Fold every behavior-relevant field (blocklist included) into a
    /// checkpoint fingerprint writer, so a snapshot taken under one
    /// discovery configuration is refused by a session running another.
    pub fn fingerprint_into(&self, w: &mut Writer) {
        w.put_u64(self.probe_budget);
        w.put_u32(self.rounds);
        w.put_u8(self.branch_bits);
        w.put_u64(self.split_hits);
        w.put_u16(self.dense_permille);
        w.put_u64(self.dense_min_probes);
        w.put_u16(self.merge_permille);
        w.put_u64(self.merge_min_probes);
        w.put_u16(self.z_permille);
        w.put_u8(self.decay_shift);
        w.put_usize(self.blocklist.len());
        for entry in self.blocklist.entries() {
            w.put_u128(entry.network_bits());
            w.put_u8(entry.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_certificates_behave() {
        let cfg = DiscoveryConfig::paper_scale();
        assert!(cfg.is_dense(4, 4));
        assert!(
            !cfg.is_dense(1, 1),
            "one answer is a lead, not a certificate"
        );
        assert!(cfg.is_quiet(0, 16));
        assert!(!cfg.is_quiet(0, 4));
        assert!(!cfg.is_quiet(8, 16));
    }

    #[test]
    fn gain_weight_orders_the_frontier() {
        let cfg = DiscoveryConfig::paper_scale();
        let unprobed = cfg.gain_weight(0, 0);
        let promising = cfg.gain_weight(2, 8);
        let fading = cfg.gain_weight(0, 12);
        assert_eq!(unprobed, 1.0);
        assert!(promising > fading);
        assert_eq!(cfg.gain_weight(4, 4), 0.0, "dense: nothing left to learn");
        assert_eq!(cfg.gain_weight(0, 64), 0.0, "quiet: nothing left to learn");
    }

    #[test]
    fn fingerprint_reacts_to_every_field() {
        let base = DiscoveryConfig::paper_scale();
        let fp = |cfg: &DiscoveryConfig| {
            let mut w = Writer::new();
            cfg.fingerprint_into(&mut w);
            w.fingerprint()
        };
        let reference = fp(&base);
        let mut variants = vec![
            DiscoveryConfig {
                probe_budget: 1,
                ..base.clone()
            },
            DiscoveryConfig {
                rounds: 9,
                ..base.clone()
            },
            DiscoveryConfig {
                branch_bits: 2,
                ..base.clone()
            },
            DiscoveryConfig {
                split_hits: 3,
                ..base.clone()
            },
            DiscoveryConfig {
                dense_permille: 700,
                ..base.clone()
            },
            DiscoveryConfig {
                dense_min_probes: 9,
                ..base.clone()
            },
            DiscoveryConfig {
                merge_permille: 100,
                ..base.clone()
            },
            DiscoveryConfig {
                merge_min_probes: 32,
                ..base.clone()
            },
            DiscoveryConfig {
                z_permille: 2576,
                ..base.clone()
            },
            DiscoveryConfig {
                decay_shift: 0,
                ..base.clone()
            },
        ];
        variants.push(DiscoveryConfig {
            blocklist: Blocklist::new(vec!["2001:db8::/32".parse().unwrap()]),
            ..base.clone()
        });
        for variant in variants {
            assert_ne!(fp(&variant), reference, "{variant:?}");
        }
    }
}

//! The probe blocklist: prefixes no probe may ever be sent into.
//!
//! Real measurement campaigns carry opt-out lists; the discovery subsystem
//! honors one at every point a target is about to be emitted — the
//! detection-phase target stream, the boundary re-expansion candidates and
//! the discovery tree's own sweep all consult the same [`Blocklist`] before
//! a probe exists. A blocked prefix therefore never appears in a
//! [`ProbeLog`](scent_prober::ProbeLog), not merely never in a report.

use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use scent_ipv6::Ipv6Prefix;

/// A set of prefixes excluded from all probing, of any length: a /32 entry
/// silences a whole announcement, a /56 entry punches a hole inside an
/// otherwise-watched /48.
///
/// Membership tests are containment tests against the (sorted, deduplicated)
/// entry list; the list is expected to stay small, so the linear scan is
/// cheaper than any index would be.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blocklist {
    entries: Vec<Ipv6Prefix>,
}

impl Blocklist {
    /// A blocklist over the given prefixes (sorted and deduplicated).
    pub fn new(mut entries: Vec<Ipv6Prefix>) -> Self {
        entries.sort();
        entries.dedup();
        Blocklist { entries }
    }

    /// Parse a blocklist from text lines, one prefix per line. Empty lines
    /// and `#` comments are skipped. A malformed entry is a typed
    /// [`BlocklistError`] naming the line — never a silently dropped probe
    /// exclusion.
    pub fn parse<S: AsRef<str>>(lines: &[S]) -> Result<Self, BlocklistError> {
        let mut entries = Vec::new();
        for (index, line) in lines.iter().enumerate() {
            let text = line.as_ref().trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            match Ipv6Prefix::from_str(text) {
                Ok(prefix) => entries.push(prefix),
                Err(_) => {
                    return Err(BlocklistError {
                        line: index + 1,
                        entry: text.to_string(),
                    })
                }
            }
        }
        Ok(Blocklist::new(entries))
    }

    /// The entries, sorted and deduplicated.
    pub fn entries(&self) -> &[Ipv6Prefix] {
        &self.entries
    }

    /// Whether the list has no entries (the common case — checked once per
    /// epoch so empty blocklists cost nothing on the target hot path).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `prefix` lies entirely inside some blocked entry — the test
    /// applied to candidate /48s and sweep subnets before a target is drawn
    /// from them.
    pub fn covers(&self, prefix: &Ipv6Prefix) -> bool {
        self.entries
            .iter()
            .any(|entry| entry.contains_prefix(prefix))
    }

    /// Whether `addr` lies inside some blocked entry — the final per-target
    /// test applied before an address is emitted to a prober.
    pub fn covers_addr(&self, addr: Ipv6Addr) -> bool {
        self.entries.iter().any(|entry| entry.contains(addr))
    }
}

/// A malformed blocklist entry: the line number (1-based) and the offending
/// text. Refusing the whole list is deliberate — a half-parsed opt-out list
/// is a compliance incident, not a warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlocklistError {
    /// 1-based line number of the malformed entry.
    pub line: usize,
    /// The offending entry text.
    pub entry: String,
}

impl fmt::Display for BlocklistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed blocklist entry at line {}: {:?} is not an IPv6 prefix",
            self.line, self.entry
        )
    }
}

impl std::error::Error for BlocklistError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let list = Blocklist::parse(&[
            "# operators who opted out",
            "",
            "2001:db8::/32",
            "  2001:16b8:1d00::/48  ",
        ])
        .unwrap();
        assert_eq!(list.len(), 2);
        assert!(list.covers(&p("2001:db8:ffff::/48")));
        assert!(list.covers(&p("2001:16b8:1d00:aa00::/56")));
        assert!(!list.covers(&p("2001:16b8:1d10::/48")));
    }

    #[test]
    fn malformed_entry_is_a_typed_error_with_the_line() {
        let err = Blocklist::parse(&["2001:db8::/32", "not-a-prefix/99"]).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.entry, "not-a-prefix/99");
        let shown = err.to_string();
        assert!(shown.contains("line 2"), "{shown}");
        assert!(shown.contains("not-a-prefix"), "{shown}");
    }

    #[test]
    fn containment_is_entry_containment_not_equality() {
        let list = Blocklist::new(vec![p("2001:db8:1::/48")]);
        assert!(list.covers_addr("2001:db8:1::42".parse().unwrap()));
        assert!(!list.covers_addr("2001:db8:2::42".parse().unwrap()));
        // The /48 does not cover its /32 supernet.
        assert!(!list.covers(&p("2001:db8::/32")));
    }

    #[test]
    fn entries_are_sorted_and_deduplicated() {
        let list = Blocklist::new(vec![
            p("2001:db8:2::/48"),
            p("2001:db8:1::/48"),
            p("2001:db8:2::/48"),
        ]);
        assert_eq!(
            list.entries(),
            &[p("2001:db8:1::/48"), p("2001:db8:2::/48")]
        );
    }
}

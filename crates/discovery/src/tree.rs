//! The confidence-split prefix tree: adaptive hierarchical target discovery.
//!
//! The tree is rooted at announcement granularity (one root per RIB entry,
//! clamped to /48) and refines toward /48 on response evidence. Each node
//! holds integer counts `(hits, trials)` folded from two evidence channels:
//! the monitor's own per-epoch [`DensityAccumulator`] stream over watched
//! /48s, and the tree's boundary sweep probes. The confidence rule
//! ([`DiscoveryConfig`]) is a pure function of those counts, so the whole
//! tree evolution is a pure function of `(config, world seed)` — the repo's
//! standing determinism invariant extends to discovery unchanged.
//!
//! # Lifecycle
//!
//! At every epoch boundary the monitor drives one [`DiscoveryTree`] cycle:
//!
//! 1. **decay** — counts age by a right-shift, re-opening certificates over
//!    moving occupancy bands;
//! 2. **fold** — the closing epoch's density state lands on the leaves
//!    covering each watched /48;
//! 3. **sweep** — the probe budget is allocated to the highest-expected-gain
//!    frontier leaves ([`DiscoveryTree::plan`]), probes are sent, outcomes
//!    fold back ([`DiscoveryTree::fold_probes`]);
//! 4. **rebalance** — nodes whose attributed hits cross the split threshold
//!    materialize children down to the responding /48; internal nodes whose
//!    children are all confidently quiet merge back
//!    ([`DiscoveryTree::rebalance`]);
//! 5. **harvest** — confidently dense /48 leaves become the churn boundary's
//!    candidate source ([`DiscoveryTree::dense_48s`]).
//!
//! [`DensityAccumulator`]: scent_core::density::DensityAccumulator

use std::collections::BTreeMap;
use std::net::Ipv6Addr;

use scent_checkpoint::{CheckpointError, Checkpointable, Reader, Writer};
use scent_core::SeedExpansion;
use scent_ipv6::Ipv6Prefix;
use scent_prober::{ProbeRecord, TargetGenerator};
use scent_simnet::det::hash3;
use serde::{Deserialize, Serialize};

use crate::config::DiscoveryConfig;

/// Deepest prefix the tree refines to: the /48 is the paper's unit of
/// customer-pool inference, and the watch list the tree feeds is /48-keyed.
const LEAF_LEN: u8 = 48;

/// Probes handed to one leaf per allocation round before the allocator moves
/// to the next leaf — small enough that a burst of fresh frontier nodes
/// shares a boundary's budget, large enough to reach a dense certificate
/// ([`DiscoveryConfig::dense_min_probes`]) in one round.
const CHUNK: u64 = 16;

/// Evidence held by one tree node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeState {
    /// Probes attributed to this node (its own sweep probes plus folded
    /// density probes while it was a leaf).
    pub trials: u64,
    /// Probes that answered with an EUI-64 source.
    pub hits: u64,
    /// Sweep position: how many subnet draws this node has consumed from its
    /// seeded permutation. Advances monotonically and wraps, so a decayed
    /// (re-opened) leaf resumes its sweep where it left off instead of
    /// re-probing the same head of the order.
    pub cursor: u64,
    /// Whether the node has split (children materialized). Internal nodes
    /// hold historical counts but neither sweep nor classify.
    pub split: bool,
    /// Hit attribution: responding /48 → hits observed there while this node
    /// was a leaf. This is what lets a split cascade straight to the
    /// responding /48 instead of spending one epoch per tree level.
    pub hit_48s: BTreeMap<Ipv6Prefix, u64>,
}

impl NodeState {
    /// Hits attributed to a specific /48 under this node.
    fn attributed(&self) -> u64 {
        self.hit_48s.values().sum()
    }
}

/// One planned discovery probe: the frontier leaf it was allocated to and
/// the concrete target drawn from the leaf's sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedProbe {
    /// The frontier leaf charged for the probe.
    pub leaf: Ipv6Prefix,
    /// The target address (one pseudo-random address inside the swept
    /// subnet, drawn by the same [`TargetGenerator`] the detection stream
    /// uses, so both evidence channels probe the same representatives).
    pub target: Ipv6Addr,
}

/// Summary of a discovery run, folded into the monitor report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryReport {
    /// Discovery sweep probes sent across all boundaries.
    pub probes: u64,
    /// Node splits applied.
    pub splits: u64,
    /// Sibling merges applied.
    pub merges: u64,
    /// Leaves in the final tree.
    pub leaves: u64,
    /// Confidently dense /48s at the end of the run, in prefix order.
    pub dense_48s: Vec<Ipv6Prefix>,
}

/// The adaptive discovery tree. See the crate docs for the
/// lifecycle; construction is [`DiscoveryTree::from_announcements`], and the
/// monitor drives one decay/fold/sweep/rebalance cycle per epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryTree {
    /// Sweep-order seed (the campaign seed): target draws and sweep
    /// permutations are keyed on it.
    seed: u64,
    /// Tree roots: the announced prefixes (clamped to /48, covering
    /// announcements deduplicated), in prefix order.
    roots: Vec<Ipv6Prefix>,
    /// Every node, keyed by prefix. Roots are always present.
    nodes: BTreeMap<Ipv6Prefix, NodeState>,
    /// Sweep probes sent so far.
    probes: u64,
    /// Splits applied so far.
    splits: u64,
    /// Merges applied so far.
    merges: u64,
}

impl DiscoveryTree {
    /// A tree rooted at the given announced prefixes. Announcements longer
    /// than /48 are clamped to their enclosing /48; an announcement covered
    /// by another is dropped so roots are disjoint and every address has
    /// exactly one covering root.
    pub fn from_announcements<I: IntoIterator<Item = Ipv6Prefix>>(announced: I, seed: u64) -> Self {
        let mut roots: Vec<Ipv6Prefix> = announced
            .into_iter()
            .map(|p| {
                if p.len() > LEAF_LEN {
                    p.supernet(LEAF_LEN).expect("clamping shortens the prefix")
                } else {
                    p
                }
            })
            .collect();
        roots.sort();
        roots.dedup();
        // Sorted order puts a covering prefix before everything it contains
        // (same network bits compare by length), so one pass keeps exactly
        // the outermost announcements.
        let mut disjoint: Vec<Ipv6Prefix> = Vec::with_capacity(roots.len());
        for root in roots {
            if !disjoint.iter().any(|kept| kept.contains_prefix(&root)) {
                disjoint.push(root);
            }
        }
        let nodes = disjoint
            .iter()
            .map(|&root| (root, NodeState::default()))
            .collect();
        DiscoveryTree {
            seed,
            roots: disjoint,
            nodes,
            probes: 0,
            splits: 0,
            merges: 0,
        }
    }

    /// The tree roots, in prefix order.
    pub fn roots(&self) -> &[Ipv6Prefix] {
        &self.roots
    }

    /// Number of nodes (internal and leaf).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (an empty RIB).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node holding evidence for `prefix`, if present.
    pub fn node(&self, prefix: &Ipv6Prefix) -> Option<&NodeState> {
        self.nodes.get(prefix)
    }

    /// The leaf whose subtree covers `addr`: descend from the covering root
    /// through split nodes. `None` when no root covers the address.
    pub fn leaf_of(&self, cfg: &DiscoveryConfig, addr: Ipv6Addr) -> Option<Ipv6Prefix> {
        let mut current = *self.roots.iter().find(|root| root.contains(addr))?;
        while self.nodes.get(&current).is_some_and(|node| node.split) {
            let child_len = (current.len() + cfg.branch_bits).min(LEAF_LEN);
            current = Ipv6Prefix::new(addr, child_len).expect("child length is valid");
        }
        Some(current)
    }

    /// Age every count by the configured right-shift — step 1 of the
    /// boundary cycle. Attribution entries that decay to zero are dropped.
    pub fn decay(&mut self, cfg: &DiscoveryConfig) {
        if cfg.decay_shift == 0 {
            return;
        }
        let shift = u32::from(cfg.decay_shift).min(63);
        for node in self.nodes.values_mut() {
            node.trials >>= shift;
            node.hits >>= shift;
            node.hit_48s.retain(|_, count| {
                *count >>= shift;
                *count > 0
            });
        }
    }

    /// Fold one epoch of per-/48 density evidence into the covering leaves —
    /// step 2 of the boundary cycle. Each entry is `(watched /48, probes,
    /// unique EUI-64 responders)`; the caller must present entries in a
    /// deterministic order (the monitor sorts by prefix).
    pub fn fold_density<I>(&mut self, cfg: &DiscoveryConfig, entries: I)
    where
        I: IntoIterator<Item = (Ipv6Prefix, u64, u64)>,
    {
        for (prefix, probes, uniques) in entries {
            let Some(leaf) = self.leaf_of(cfg, prefix.network()) else {
                continue;
            };
            let hits = uniques.min(probes);
            let node = self
                .nodes
                .get_mut(&leaf)
                .expect("leaf_of returns live nodes");
            node.trials = node.trials.saturating_add(probes);
            node.hits = node.hits.saturating_add(hits);
            if hits > 0 && leaf.len() < LEAF_LEN {
                let hit_48 = prefix
                    .supernet(LEAF_LEN.min(prefix.len()))
                    .expect("not longer");
                *node.hit_48s.entry(hit_48).or_insert(0) += hits;
            }
        }
    }

    /// Allocate up to `budget` sweep probes to the frontier — step 3a of the
    /// boundary cycle. Leaves are ranked by [`DiscoveryConfig::gain_weight`]
    /// (ties broken by prefix order) and served in fixed-size probe rounds, so
    /// the most uncertain space is probed first but a burst of fresh nodes
    /// still shares the budget. Each draw advances the leaf's seeded sweep
    /// permutation over its /48 subnets (or its `granularity` subnets once
    /// the leaf is a /48); draws landing in a blocked subnet are skipped
    /// without emitting a probe and without charging the budget.
    ///
    /// Cursors advance as a side effect: planning is part of tree evolution
    /// and participates in checkpoints.
    pub fn plan(
        &mut self,
        cfg: &DiscoveryConfig,
        generator: &TargetGenerator,
        granularity: u8,
        budget: u64,
    ) -> Vec<PlannedProbe> {
        let mut order: Vec<(f64, Ipv6Prefix)> = self
            .nodes
            .iter()
            .filter(|(prefix, node)| !node.split && !cfg.blocklist.covers(prefix))
            .map(|(prefix, node)| (cfg.gain_weight(node.hits, node.trials), *prefix))
            .filter(|(weight, _)| *weight > 0.0)
            .collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut plan = Vec::new();
        let mut remaining = budget;
        // Positions examined per leaf this call, capped at the leaf's span so
        // a fully blocked sweep terminates instead of skipping forever.
        let mut examined: BTreeMap<Ipv6Prefix, u64> = BTreeMap::new();
        'alloc: loop {
            let mut progressed = false;
            for &(_, leaf) in &order {
                if remaining == 0 {
                    break 'alloc;
                }
                let sub_len = if leaf.len() < LEAF_LEN {
                    LEAF_LEN
                } else {
                    granularity.max(leaf.len())
                };
                let span: u64 = 1u64 << u32::from(sub_len - leaf.len());
                let mask = span - 1;
                // An odd multiplier is a bijection modulo the power-of-two
                // span: consecutive cursor values visit every subnet exactly
                // once per wrap, in an order keyed on (seed, leaf).
                let h = hash3(
                    self.seed,
                    leaf.network_bits() as u64,
                    (leaf.network_bits() >> 64) as u64,
                    u64::from(leaf.len()),
                );
                let mul = (h | 1) & mask;
                let add = h.rotate_left(17) & mask;
                let seen = examined.entry(leaf).or_insert(0);
                let node = self.nodes.get_mut(&leaf).expect("order built from nodes");
                let mut take = CHUNK.min(remaining);
                while take > 0 && *seen < span {
                    let pos = node.cursor & mask;
                    node.cursor = node.cursor.wrapping_add(1);
                    *seen += 1;
                    let index = pos.wrapping_mul(mul).wrapping_add(add) & mask;
                    let subnet = leaf
                        .nth_subnet(sub_len, u128::from(index))
                        .expect("index bounded by span");
                    if cfg.blocklist.covers(&subnet) {
                        continue;
                    }
                    let target = generator.random_addr_in(&subnet);
                    if cfg.blocklist.covers_addr(target) {
                        continue;
                    }
                    plan.push(PlannedProbe { leaf, target });
                    remaining -= 1;
                    take -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        plan
    }

    /// Fold sweep probe outcomes back into the tree — step 3b. Records are
    /// attributed to the leaf covering their target (the leaf they were
    /// planned for: the tree does not change between plan and fold); an
    /// EUI-64 response is a hit attributed to the responding /48.
    pub fn fold_probes<'r, I>(&mut self, cfg: &DiscoveryConfig, records: I)
    where
        I: IntoIterator<Item = &'r ProbeRecord>,
    {
        for record in records {
            let Some(leaf) = self.leaf_of(cfg, record.target) else {
                continue;
            };
            self.probes += 1;
            let hit = SeedExpansion::classify_record(record.source()) == Some(true);
            let node = self
                .nodes
                .get_mut(&leaf)
                .expect("leaf_of returns live nodes");
            node.trials = node.trials.saturating_add(1);
            if hit {
                node.hits = node.hits.saturating_add(1);
                if leaf.len() < LEAF_LEN {
                    let hit_48 = Ipv6Prefix::new(record.target, LEAF_LEN).expect("48 is valid");
                    *node.hit_48s.entry(hit_48).or_insert(0) += 1;
                }
            }
        }
    }

    /// Apply split and merge verdicts to fixpoint — step 4 of the boundary
    /// cycle.
    ///
    /// **Split**: a leaf shorter than /48 whose attributed hits reach
    /// [`DiscoveryConfig::split_hits`] materializes all `2^branch_bits`
    /// children and partitions its /48 attribution among them — each child
    /// inherits the hits observed in its subtree as `(hits, trials)` seed
    /// evidence, so the split cascades level by level straight down to the
    /// responding /48 within this one call.
    ///
    /// **Merge**: an internal node whose children are all unsplit and all
    /// either confidently quiet or fully blocked collapses back to a leaf,
    /// summing the children's counts. Collapse also cascades: a grandparent
    /// whose last noisy subtree just merged is reconsidered in the next
    /// iteration.
    pub fn rebalance(&mut self, cfg: &DiscoveryConfig) {
        loop {
            let candidates: Vec<Ipv6Prefix> = self
                .nodes
                .iter()
                .filter(|(prefix, node)| {
                    !node.split && prefix.len() < LEAF_LEN && node.attributed() >= cfg.split_hits
                })
                .map(|(prefix, _)| *prefix)
                .collect();
            if candidates.is_empty() {
                break;
            }
            for parent in candidates {
                self.split_node(cfg, parent);
            }
        }
        loop {
            let collapsible: Vec<Ipv6Prefix> = self
                .nodes
                .iter()
                .filter(|(prefix, node)| node.split && self.children_all_quiet(cfg, prefix))
                .map(|(prefix, _)| *prefix)
                .collect();
            if collapsible.is_empty() {
                break;
            }
            for parent in collapsible {
                self.merge_node(cfg, parent);
            }
        }
    }

    fn child_len(&self, cfg: &DiscoveryConfig, parent: &Ipv6Prefix) -> u8 {
        (parent.len() + cfg.branch_bits).min(LEAF_LEN)
    }

    fn split_node(&mut self, cfg: &DiscoveryConfig, parent: Ipv6Prefix) {
        let child_len = self.child_len(cfg, &parent);
        let attribution = {
            let node = self.nodes.get_mut(&parent).expect("split candidate exists");
            node.split = true;
            std::mem::take(&mut node.hit_48s)
        };
        for child in parent.subnets(child_len).expect("child length is valid") {
            let mut state = NodeState::default();
            for (&hit_48, &count) in &attribution {
                if child.contains_prefix(&hit_48) {
                    state.trials += count;
                    state.hits += count;
                    if child.len() < LEAF_LEN {
                        state.hit_48s.insert(hit_48, count);
                    }
                }
            }
            self.nodes.insert(child, state);
        }
        self.splits += 1;
    }

    fn children_all_quiet(&self, cfg: &DiscoveryConfig, parent: &Ipv6Prefix) -> bool {
        let child_len = self.child_len(cfg, parent);
        parent
            .subnets(child_len)
            .expect("child length is valid")
            .all(|child| match self.nodes.get(&child) {
                Some(node) => {
                    !node.split
                        && (cfg.is_quiet(node.hits, node.trials) || cfg.blocklist.covers(&child))
                }
                None => false,
            })
    }

    fn merge_node(&mut self, cfg: &DiscoveryConfig, parent: Ipv6Prefix) {
        let child_len = self.child_len(cfg, &parent);
        let mut trials = 0u64;
        let mut hits = 0u64;
        for child in parent.subnets(child_len).expect("child length is valid") {
            let state = self
                .nodes
                .remove(&child)
                .expect("collapsible children exist");
            trials = trials.saturating_add(state.trials);
            hits = hits.saturating_add(state.hits);
        }
        let node = self.nodes.get_mut(&parent).expect("merge parent exists");
        node.split = false;
        node.trials = trials;
        node.hits = hits;
        // Residual hits under a certified-quiet subtree are noise, not a
        // lead: dropping the attribution keeps a merge from immediately
        // re-seeding the split it just undid.
        node.hit_48s = BTreeMap::new();
        self.merges += 1;
    }

    /// Confidently dense, unblocked /48 leaves in prefix order — step 5, the
    /// candidate source the churn boundary's watch-list revision consumes.
    pub fn dense_48s(&self, cfg: &DiscoveryConfig) -> Vec<Ipv6Prefix> {
        self.nodes
            .iter()
            .filter(|(prefix, node)| {
                !node.split
                    && prefix.len() == LEAF_LEN
                    && cfg.is_dense(node.hits, node.trials)
                    && !cfg.blocklist.covers(prefix)
            })
            .map(|(prefix, _)| *prefix)
            .collect()
    }

    /// Whether any unblocked frontier leaf still has positive expected gain.
    /// While this holds, an empty watch list is *not* terminal — discovery
    /// can still refill it. When the whole frontier is classified or
    /// blocked, the monitor's documented watch-exhaustion terminal state
    /// applies unchanged.
    pub fn frontier_live(&self, cfg: &DiscoveryConfig) -> bool {
        self.nodes.iter().any(|(prefix, node)| {
            !node.split
                && !cfg.blocklist.covers(prefix)
                && cfg.gain_weight(node.hits, node.trials) > 0.0
        })
    }

    /// The run summary folded into the monitor report.
    pub fn report(&self, cfg: &DiscoveryConfig) -> DiscoveryReport {
        DiscoveryReport {
            probes: self.probes,
            splits: self.splits,
            merges: self.merges,
            leaves: self.nodes.values().filter(|node| !node.split).count() as u64,
            dense_48s: self.dense_48s(cfg),
        }
    }
}

impl Checkpointable for NodeState {
    fn encode(&self, w: &mut Writer) {
        self.trials.encode(w);
        self.hits.encode(w);
        self.cursor.encode(w);
        self.split.encode(w);
        self.hit_48s.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(NodeState {
            trials: u64::decode(r)?,
            hits: u64::decode(r)?,
            cursor: u64::decode(r)?,
            split: bool::decode(r)?,
            hit_48s: BTreeMap::decode(r)?,
        })
    }
}

impl Checkpointable for DiscoveryTree {
    fn encode(&self, w: &mut Writer) {
        self.seed.encode(w);
        self.roots.encode(w);
        self.nodes.encode(w);
        self.probes.encode(w);
        self.splits.encode(w);
        self.merges.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DiscoveryTree {
            seed: u64::decode(r)?,
            roots: Vec::decode(r)?,
            nodes: BTreeMap::decode(r)?,
            probes: u64::decode(r)?,
            splits: u64::decode(r)?,
            merges: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_checkpoint::{decode_value, encode_value};
    use scent_simnet::SimTime;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn cfg() -> DiscoveryConfig {
        DiscoveryConfig::paper_scale()
    }

    fn hit_record(target: Ipv6Addr) -> ProbeRecord {
        // An EUI-64 source: ff:fe in the middle of the IID with the
        // universal/local bit set.
        let source: Ipv6Addr = "2001:db8::0211:22ff:fe33:4455".parse().unwrap();
        ProbeRecord {
            target,
            sent_at: SimTime::at(0, 0),
            response: Some(scent_prober::ResponseRecord {
                source,
                kind: scent_simnet::ReplyKind::EchoReply,
            }),
        }
    }

    fn miss_record(target: Ipv6Addr) -> ProbeRecord {
        ProbeRecord {
            target,
            sent_at: SimTime::at(0, 0),
            response: None,
        }
    }

    #[test]
    fn roots_are_clamped_and_disjoint() {
        let tree = DiscoveryTree::from_announcements(
            vec![
                p("2001:db8::/32"),
                p("2001:db8:1::/48"),         // covered by the /32
                p("2803:9810:100:ff00::/56"), // clamps to its /48
            ],
            7,
        );
        assert_eq!(tree.roots(), &[p("2001:db8::/32"), p("2803:9810:100::/48")]);
    }

    #[test]
    fn a_hit_cascades_the_split_to_the_responding_48() {
        let cfg = cfg();
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8::/32")], 7);
        let target: Ipv6Addr = "2001:db8:1d05::42".parse().unwrap();
        tree.fold_probes(&cfg, [&hit_record(target)]);
        tree.rebalance(&cfg);
        // /32 → /36 → /40 → /44 → /48: four splits, and the responding /48
        // is now a leaf carrying the hit as seed evidence.
        assert_eq!(tree.report(&cfg).splits, 4);
        let leaf = tree.leaf_of(&cfg, target).unwrap();
        assert_eq!(leaf, p("2001:db8:1d05::/48"));
        let node = tree.node(&leaf).unwrap();
        assert_eq!((node.hits, node.trials), (1, 1));
    }

    #[test]
    fn quiet_siblings_merge_back() {
        let mut config = cfg();
        config.decay_shift = 0;
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8::/32")], 7);
        let target: Ipv6Addr = "2001:db8:1d05::42".parse().unwrap();
        tree.fold_probes(&cfg(), [&hit_record(target)]);
        tree.rebalance(&config);
        let nodes_after_split = tree.len();
        // Silence everywhere: enough quiet trials on every leaf to certify,
        // fed as misses through the probe channel.
        for _ in 0..config.merge_min_probes {
            let leaves: Vec<Ipv6Prefix> = tree
                .nodes
                .iter()
                .filter(|(_, n)| !n.split)
                .map(|(p, _)| *p)
                .collect();
            let records: Vec<ProbeRecord> = leaves
                .iter()
                .map(|leaf| miss_record(leaf.network()))
                .collect();
            tree.fold_probes(&config, records.iter());
        }
        // The hit evidence is still present on the /48, keeping it
        // unclassified; silence it too by overwhelming trials.
        let stale: Vec<ProbeRecord> = (0..64).map(|_| miss_record(target)).collect();
        tree.fold_probes(&config, stale.iter());
        tree.rebalance(&config);
        assert!(
            tree.report(&config).merges >= 4,
            "quiet subtree must collapse"
        );
        assert!(tree.len() < nodes_after_split);
        // Fully collapsed: back to the root as the only leaf.
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn plan_is_budgeted_deterministic_and_blocklist_clean() {
        let config = cfg();
        let generator = TargetGenerator::new(7);
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8::/32")], 7);
        let mut twin = tree.clone();
        let plan = tree.plan(&config, &generator, 56, 100);
        let again = twin.plan(&config, &generator, 56, 100);
        assert_eq!(plan.len(), 100);
        assert_eq!(plan, again, "planning is a pure function of tree state");
        assert_eq!(tree, twin, "cursor evolution matches too");

        // A blocked /40 never appears in any plan, and skipped draws do not
        // consume budget.
        let mut blocked = cfg();
        blocked.blocklist = crate::Blocklist::new(vec![p("2001:db8:1d00::/40")]);
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8::/32")], 7);
        let plan = tree.plan(&blocked, &generator, 56, 2000);
        assert_eq!(plan.len(), 2000);
        assert!(plan
            .iter()
            .all(|probe| !blocked.blocklist.covers_addr(probe.target)));
    }

    #[test]
    fn fully_blocked_frontier_plans_nothing_and_is_dead() {
        let mut config = cfg();
        config.blocklist = crate::Blocklist::new(vec![p("2001:db8::/32")]);
        let generator = TargetGenerator::new(7);
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8::/32")], 7);
        assert!(tree.plan(&config, &generator, 64, 4096).is_empty());
        assert!(!tree.frontier_live(&config));
    }

    #[test]
    fn decay_reopens_certificates() {
        let config = cfg();
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8:1::/48")], 7);
        let records: Vec<ProbeRecord> = (0..8)
            .map(|i| hit_record(p("2001:db8:1::/48").addr_with_host_bits(i)))
            .collect();
        tree.fold_probes(&config, records.iter());
        let root = p("2001:db8:1::/48");
        assert!(config.is_dense(tree.node(&root).unwrap().hits, 8));
        for _ in 0..4 {
            tree.decay(&config);
        }
        let node = tree.node(&root).unwrap();
        assert!(!config.is_dense(node.hits, node.trials));
        assert!(config.gain_weight(node.hits, node.trials) > 0.0);
    }

    #[test]
    fn checkpoint_roundtrips_byte_identically() {
        let config = cfg();
        let generator = TargetGenerator::new(7);
        let mut tree =
            DiscoveryTree::from_announcements(vec![p("2001:db8::/32"), p("2803:9810::/32")], 7);
        let plan = tree.plan(&config, &generator, 56, 64);
        let records: Vec<ProbeRecord> = plan
            .iter()
            .enumerate()
            .map(|(i, probe)| {
                if i % 7 == 0 {
                    hit_record(probe.target)
                } else {
                    miss_record(probe.target)
                }
            })
            .collect();
        tree.fold_probes(&config, records.iter());
        tree.rebalance(&config);
        let bytes = encode_value(&tree);
        let restored: DiscoveryTree = decode_value(&bytes).unwrap();
        assert_eq!(restored, tree);
        assert_eq!(encode_value(&restored), bytes);
    }
}

//! Adaptive hierarchical target discovery: the confidence-split prefix tree.
//!
//! The paper's seed expansion (§4.1) is a one-shot pass over a flat /48
//! candidate list derived from year-old seed data. This crate replaces the
//! flat list with a **live prefix tree over the announced space**: rooted at
//! the RIB's announcement granularity, splitting toward /48 where response
//! evidence accumulates, merging quiet siblings back, and allocating each
//! epoch's probe budget to the highest-expected-gain frontier — so a
//! continuous monitor *discovers* dense customer bands unseeded instead of
//! being handed them.
//!
//! Three pieces compose:
//!
//! * [`wilson_bounds`] / [`DiscoveryConfig`] — the confidence rule: every
//!   structural decision is a pure function of integer `(hits, trials)`
//!   counts, with thresholds in integer permille so configurations stay
//!   `Eq`-comparable and checkpoint-fingerprintable.
//! * [`DiscoveryTree`] — the tree itself: seeded sweep orders per leaf,
//!   split cascades that ride the responding /48's attribution all the way
//!   down in one rebalance, quiet-sibling merges, decay for moving bands.
//! * [`Blocklist`] — the probe opt-out layer every target-emitting path
//!   (detection stream, boundary re-expansion, discovery sweep) consults
//!   before any probe exists.
//!
//! The integration lives in `scent-stream`: the continuous monitor drives
//! one decay/fold/sweep/rebalance cycle per epoch boundary, routes the sweep
//! probes through the inference shards as `Phase::Expansion` observations
//! (so validated-/48 state grows live in reports), feeds the tree's dense
//! /48s into the watch-list revision, and carries the tree through
//! checkpoint/restore byte-identically.
//!
//! Everything here is deterministic by construction: no wall-clock input, no
//! map-iteration-order dependence, no randomness beyond seeded permutations.
//! Tree evolution is a pure function of `(config, world seed)` — the same
//! invariant the rest of the workspace is built around.

#![warn(missing_docs)]

mod blocklist;
mod confidence;
mod config;
mod tree;

pub use blocklist::{Blocklist, BlocklistError};
pub use confidence::{wilson_bounds, wilson_lower, wilson_upper};
pub use config::DiscoveryConfig;
pub use tree::{DiscoveryReport, DiscoveryTree, NodeState, PlannedProbe};

//! The confidence rule: Wilson score bounds over per-node probe evidence.
//!
//! Every structural decision the discovery tree makes — split a node toward
//! /48, merge quiet siblings back, classify a /48 as dense, allocate the
//! next boundary's probe budget — is a pure function of integer counts
//! `(hits, trials)` through the bounds computed here. No wall-clock input,
//! no map iteration order, no randomness: two runs with the same counts make
//! the same decisions, which is what keeps tree evolution byte-identical
//! across shard counts, producer counts and live-vs-replay backends.
//!
//! The arithmetic is IEEE-754 `f64` (add, multiply, divide, square root),
//! all of which are exactly specified and bit-reproducible across
//! conforming platforms; thresholds enter as integer permille values from
//! [`DiscoveryConfig`](crate::DiscoveryConfig) so configuration stays
//! `Eq`-comparable and fingerprintable.

/// The Wilson score interval for a Bernoulli proportion: the interval
/// `(lower, upper)` such that the true response rate of a prefix lies inside
/// it with the confidence implied by the critical value `z` (in permille:
/// `1960` ≈ the 95% two-sided interval).
///
/// With no evidence (`trials == 0`) the interval is the vacuous `(0, 1)`.
/// `hits` is clamped to `trials`, so malformed inputs cannot produce bounds
/// outside `[0, 1]`.
///
/// The Wilson interval (unlike the naive normal approximation) stays
/// meaningful at the small counts discovery actually operates on: a handful
/// of probes into a /48, one hit in a sweep of a /36. That is exactly the
/// regime where "4 of 4 answered" must already count as confidently dense
/// while "0 of 4 answered" must not yet count as confidently quiet.
pub fn wilson_bounds(hits: u64, trials: u64, z_permille: u16) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let h = hits.min(trials) as f64;
    let z = f64::from(z_permille) / 1000.0;
    let z2 = z * z;
    let p = h / n;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    let lower = ((center - margin) / denom).max(0.0);
    let upper = ((center + margin) / denom).min(1.0);
    (lower, upper)
}

/// The lower Wilson bound alone — the "at least this dense" certificate.
pub fn wilson_lower(hits: u64, trials: u64, z_permille: u16) -> f64 {
    wilson_bounds(hits, trials, z_permille).0
}

/// The upper Wilson bound alone — the "at most this dense" certificate,
/// and (for an unclassified node) the optimistic expected-gain weight the
/// budget allocator ranks frontier nodes by.
pub fn wilson_upper(hits: u64, trials: u64, z_permille: u16) -> f64 {
    wilson_bounds(hits, trials, z_permille).1
}

#[cfg(test)]
mod tests {
    use super::*;

    const Z95: u16 = 1960;

    #[test]
    fn no_evidence_is_the_vacuous_interval() {
        assert_eq!(wilson_bounds(0, 0, Z95), (0.0, 1.0));
    }

    #[test]
    fn bounds_bracket_the_point_estimate() {
        for &(h, n) in &[(0u64, 4u64), (1, 4), (4, 4), (7, 16), (250, 256)] {
            let (lo, hi) = wilson_bounds(h, n, Z95);
            let p = h as f64 / n as f64;
            assert!(lo <= p && p <= hi, "({h},{n}): {lo} <= {p} <= {hi}");
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn interval_tightens_with_evidence() {
        let wide = wilson_bounds(2, 4, Z95);
        let tight = wilson_bounds(128, 256, Z95);
        assert!(tight.1 - tight.0 < wide.1 - wide.0);
    }

    #[test]
    fn perfect_small_sample_is_already_confidently_dense() {
        // 4/4 hits: the lower bound clears 0.5 — the default dense rule.
        assert!(wilson_lower(4, 4, Z95) > 0.5);
        // 1/1 does not: a single answer is a lead, not a certificate.
        assert!(wilson_lower(1, 1, Z95) < 0.5);
    }

    #[test]
    fn silence_needs_a_real_sample_to_be_confidently_quiet() {
        // 0/4 could still be a 20%-responsive prefix.
        assert!(wilson_upper(0, 4, Z95) > 0.2);
        // 0/16 cannot (at 95%).
        assert!(wilson_upper(0, 16, Z95) <= 0.2);
    }

    #[test]
    fn hits_are_clamped_to_trials() {
        assert_eq!(wilson_bounds(9, 4, Z95), wilson_bounds(4, 4, Z95));
    }
}

//! Property tests for the discovery subsystem: the confidence rule stays a
//! valid interval, planning is a deterministic pure function of tree state,
//! rebalancing reaches a consistent fixpoint, and checkpoints round-trip
//! byte-identically after arbitrary evidence.

use proptest::prelude::*;

use scent_checkpoint::{decode_value, encode_value};
use scent_discovery::{wilson_bounds, Blocklist, DiscoveryConfig, DiscoveryTree};
use scent_ipv6::Ipv6Prefix;
use scent_prober::{ProbeRecord, ResponseRecord, TargetGenerator};
use scent_simnet::{ReplyKind, SimTime};

fn p(s: &str) -> Ipv6Prefix {
    s.parse().unwrap()
}

fn record(target: std::net::Ipv6Addr, hit: bool) -> ProbeRecord {
    ProbeRecord {
        target,
        sent_at: SimTime::at(0, 0),
        response: hit.then_some(ResponseRecord {
            source: "2001:db8::0211:22ff:fe33:4455".parse().unwrap(),
            kind: ReplyKind::EchoReply,
        }),
    }
}

/// Grow a tree from seeded pseudo-random evidence: plan, answer a subset of
/// probes, fold, rebalance — the exact cycle the monitor drives.
fn grown_tree(seed: u64, budget: u64, hit_mod: u64, boundaries: u32) -> DiscoveryTree {
    let cfg = DiscoveryConfig::paper_scale();
    let generator = TargetGenerator::new(seed);
    let mut tree =
        DiscoveryTree::from_announcements(vec![p("2001:db8::/32"), p("2803:9810:100::/48")], seed);
    for _ in 0..boundaries {
        tree.decay(&cfg);
        let plan = tree.plan(&cfg, &generator, 56, budget);
        let records: Vec<ProbeRecord> = plan
            .iter()
            .enumerate()
            .map(|(i, probe)| record(probe.target, hit_mod > 0 && i as u64 % hit_mod == 0))
            .collect();
        tree.fold_probes(&cfg, records.iter());
        tree.rebalance(&cfg);
    }
    tree
}

proptest! {
    // The Wilson interval is always a sub-interval of [0, 1] that brackets
    // the point estimate and tightens monotonically in the trial count.
    #[test]
    fn wilson_interval_is_well_formed(
        hits in 0u64..=512,
        extra in 0u64..=512,
        z_permille in 100u16..=4000,
    ) {
        let trials = hits + extra;
        let (lo, hi) = wilson_bounds(hits, trials, z_permille);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
        if trials > 0 {
            let point = hits as f64 / trials as f64;
            prop_assert!(lo <= point && point <= hi);
            // Doubling the evidence at the same rate never widens the bound.
            let (lo2, hi2) = wilson_bounds(hits * 2, trials * 2, z_permille);
            prop_assert!(hi2 - lo2 <= (hi - lo) + 1e-12);
        }
    }

    // Planning is a pure function of tree state: the same tree plans the
    // same probes (and evolves its cursors identically), the budget is an
    // exact bound, and no planned target lies in a blocked prefix.
    #[test]
    fn plan_is_deterministic_budgeted_and_clean(
        seed in 1u64..1_000_000,
        budget in 1u64..=512,
        block_48 in 0u8..=15,
    ) {
        let mut cfg = DiscoveryConfig::paper_scale();
        let blocked = p("2001:db8::/32")
            .nth_subnet(48, u128::from(block_48))
            .unwrap();
        cfg.blocklist = Blocklist::new(vec![blocked]);
        let generator = TargetGenerator::new(seed);
        let mut tree = DiscoveryTree::from_announcements(vec![p("2001:db8::/32")], seed);
        let mut twin = tree.clone();
        let plan = tree.plan(&cfg, &generator, 56, budget);
        let again = twin.plan(&cfg, &generator, 56, budget);
        prop_assert_eq!(&plan, &again);
        prop_assert_eq!(&tree, &twin);
        prop_assert!(plan.len() as u64 <= budget);
        for probe in &plan {
            prop_assert!(!cfg.blocklist.covers_addr(probe.target));
        }
    }

    // Rebalancing reaches a fixpoint with a consistent structure: no leaf
    // still holds a split-worthy attribution, every dense /48 is a real
    // leaf, and running rebalance again changes nothing.
    #[test]
    fn rebalance_reaches_a_stable_fixpoint(
        seed in 1u64..1_000_000,
        budget in 32u64..=256,
        hit_mod in 0u64..=9,
        boundaries in 1u32..=3,
    ) {
        let cfg = DiscoveryConfig::paper_scale();
        let tree = grown_tree(seed, budget, hit_mod, boundaries);
        let mut again = tree.clone();
        again.rebalance(&cfg);
        prop_assert_eq!(&again, &tree);
        for dense in tree.dense_48s(&cfg) {
            prop_assert_eq!(dense.len(), 48);
            let node = tree.node(&dense).unwrap();
            prop_assert!(cfg.is_dense(node.hits, node.trials));
        }
    }

    // Tree state round-trips through the checkpoint codec byte-identically
    // after arbitrary growth.
    #[test]
    fn checkpoint_roundtrip_is_byte_identical(
        seed in 1u64..1_000_000,
        budget in 1u64..=256,
        hit_mod in 0u64..=9,
    ) {
        let tree = grown_tree(seed, budget, hit_mod, 2);
        let bytes = encode_value(&tree);
        let restored: DiscoveryTree = decode_value(&bytes).unwrap();
        prop_assert_eq!(&restored, &tree);
        prop_assert_eq!(encode_value(&restored), bytes);
    }
}

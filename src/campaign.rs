//! The unified, backend-agnostic campaign entry point.
//!
//! The workspace grows three ways to run the paper's methodology — the batch
//! [`Pipeline`], the sharded [`StreamPipeline`], and the continuous
//! [`StreamMonitor`]. [`Campaign`] puts one
//! builder in front of all three: pick a backend (anything implementing
//! [`ProbeTransport`] + [`WorldView`], including `&dyn
//! MeasurementBackend` trait objects), set the shared knobs, pick a
//! [`CampaignMode`], and `run()`.
//!
//! ```
//! use followscent::prober::RecordingBackend;
//! use followscent::simnet::{scenarios, Engine, WorldScale};
//! use followscent::{Campaign, CampaignMode, ScentError};
//!
//! fn main() -> Result<(), ScentError> {
//!     let engine = Engine::build(scenarios::paper_world(71, WorldScale::small()))?;
//!     // Record the batch run...
//!     let recorder = RecordingBackend::new(&engine);
//!     let batch = Campaign::builder()
//!         .world(&recorder)
//!         .max_48s_per_seed(128)
//!         .mode(CampaignMode::Batch)
//!         .run()?;
//!     // ...then replay the log through the streamed pipeline: same report,
//!     // different backend, different execution strategy — here with the
//!     // probing side split across four parallel producers merged back into
//!     // one deterministic virtual clock.
//!     let replay = followscent::prober::RecordedBackend::from_log(recorder.finish());
//!     let streamed = Campaign::builder()
//!         .world(&replay)
//!         .max_48s_per_seed(128)
//!         .mode(CampaignMode::Streamed {
//!             shards: 2,
//!             producers: 4,
//!         })
//!         .run()?;
//!     assert_eq!(batch.pipeline(), streamed.pipeline());
//!     Ok(())
//! }
//! ```
//!
//! AIMD rate feedback composes with sharded producers: the virtual-queue
//! model is a pure function of the configuration and virtual time, so every
//! producer replays the same rate trajectory and the run stays
//! bit-reproducible at any producer count:
//!
//! ```
//! use followscent::prober::QueueModel;
//! use followscent::simnet::{scenarios, Engine};
//! use followscent::{Campaign, CampaignMode, ScentError};
//!
//! fn main() -> Result<(), ScentError> {
//!     let engine = Engine::build(scenarios::continuous_world(13))?;
//!     let watched = vec!["2001:16b8:100::/48".parse().unwrap()];
//!     let run = |producers| {
//!         Campaign::builder()
//!             .world(&engine)
//!             .rate_pps(128)
//!             .rate_feedback(true) // adapt to consumer capacity...
//!             .queue_model(QueueModel {
//!                 drain_rate: Some(16), // ...16 obs/s per shard...
//!                 high_watermark: 64,   // ...backing off at 64 queued...
//!                 low_watermark: 8,     // ...recovering below 8
//!                 ..QueueModel::unbounded()
//!             })
//!             .watch(watched.clone())
//!             .mode(CampaignMode::Monitor {
//!                 windows: 2,
//!                 shards: 2,
//!                 producers, // feedback works at any producer count
//!             })
//!             .run()
//!     };
//!     let single = run(1)?;
//!     let mut sharded = run(4)?.monitor().unwrap().clone();
//!     let single = single.monitor().unwrap();
//!     sharded.backpressure_stalls = single.backpressure_stalls;
//!     assert_eq!(single, &sharded, "byte-identical at any producer count");
//!     assert!(single.final_rate < 128, "the slow consumer throttled probing");
//!     Ok(())
//! }
//! ```
//!
//! The watch list itself can be *live*
//! ([`CampaignBuilder::refresh_every`] / [`CampaignBuilder::watch_capacity`]):
//! the monitor folds its own density state through a re-expansion step on a
//! cadence, evicting /48s that went quiet and admitting newly-dense
//! neighbours — the paper's "scan → find dense prefixes → watch them →
//! re-expand" loop, closed. Churning runs stay byte-identical across
//! producer counts and across live vs. recorded replay:
//!
//! ```
//! use followscent::simnet::{scenarios, Engine, SimTime};
//! use followscent::{Campaign, CampaignMode, ScentError};
//!
//! fn main() -> Result<(), ScentError> {
//!     // A world whose dense /48 migrates daily within a /44 pool.
//!     let engine = Engine::build(scenarios::churn_world(7))?;
//!     let initial = vec![
//!         "2001:16b8:1d0b::/48".parse().unwrap(), // dense on the first day
//!         "2803:9810:100::/48".parse().unwrap(),  // static control
//!     ];
//!     let report = Campaign::builder()
//!         .world(&engine)
//!         .watch(initial.clone())
//!         .refresh_every(1)  // revise the watch list every window...
//!         .watch_capacity(3) // ...keeping at most three /48s
//!         .start(SimTime::at(10, 9))
//!         .mode(CampaignMode::Monitor {
//!             windows: 4,
//!             shards: 2,
//!             producers: 2,
//!         })
//!         .run()?;
//!     let monitor = report.monitor().unwrap();
//!     for revision in &monitor.revisions {
//!         println!(
//!             "epoch {}: +{} admitted, -{} evicted",
//!             revision.epoch,
//!             revision.admitted.len(),
//!             revision.evicted.len()
//!         );
//!     }
//!     let (admitted, evicted) = monitor.churn_counts();
//!     assert!(admitted > 0 && evicted > 0, "the monitor followed the band");
//!     assert_ne!(monitor.final_watch, initial);
//!     Ok(())
//! }
//! ```

use std::path::PathBuf;

use scent_checkpoint::{CheckpointSink, FileCheckpointStore};
use scent_core::{Pipeline, PipelineConfig, PipelineReport};
use scent_discovery::DiscoveryConfig;
use scent_ipv6::Ipv6Prefix;
use scent_prober::{ProbeTransport, QueueModel, WorldView};
use scent_simnet::{SimDuration, SimTime};
use scent_stream::{
    MonitorConfig, MonitorControl, MonitorReport, MonitorSnapshot, StopSignal, StreamConfig,
    StreamMonitor, StreamPipeline, WatchChurn,
};
use scent_telemetry::StreamObserver;

use crate::error::{CampaignError, ScentError};

/// How a campaign executes the methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMode {
    /// The batch discovery pipeline: whole scans, one thread.
    Batch,
    /// The sharded streaming pipeline: identical report to [`Batch`]
    /// (test-enforced for any shard *and* producer count), observations are
    /// probed by `producers` parallel probe threads, recombined through the
    /// merged deterministic virtual clock, and flow through `shards`
    /// inference workers.
    ///
    /// [`Batch`]: CampaignMode::Batch
    Streamed {
        /// Number of inference shards.
        shards: usize,
        /// Number of probe producers each scan is split across (1 = the
        /// classic single-threaded prober).
        producers: usize,
    },
    /// The continuous rotation monitor over the watched /48s (set with
    /// [`CampaignBuilder::watch`]): endless windows, live rotation events,
    /// passive tracking.
    Monitor {
        /// Number of daily windows to observe.
        windows: u64,
        /// Number of inference shards.
        shards: usize,
        /// Number of probe producers each window's scan is split across.
        /// Composes with [`CampaignBuilder::rate_feedback`] at any count:
        /// every producer replays the same deterministic virtual-queue rate
        /// trajectory.
        producers: usize,
    },
}

/// What a campaign produced, depending on its [`CampaignMode`].
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignReport {
    /// A discovery-pipeline report ([`CampaignMode::Batch`] and
    /// [`CampaignMode::Streamed`]).
    Pipeline(PipelineReport),
    /// A monitoring report ([`CampaignMode::Monitor`]).
    Monitor(MonitorReport),
}

impl CampaignReport {
    /// The pipeline report, if this campaign ran in batch or streamed mode.
    pub fn pipeline(&self) -> Option<&PipelineReport> {
        match self {
            CampaignReport::Pipeline(report) => Some(report),
            CampaignReport::Monitor(_) => None,
        }
    }

    /// The monitor report, if this campaign ran in monitor mode.
    pub fn monitor(&self) -> Option<&MonitorReport> {
        match self {
            CampaignReport::Pipeline(_) => None,
            CampaignReport::Monitor(report) => Some(report),
        }
    }
}

/// The unified campaign facade. Start with [`Campaign::builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Campaign;

impl Campaign {
    /// Start configuring a campaign. Attach a backend with
    /// [`CampaignBuilder::world`] before calling `run`.
    pub fn builder() -> CampaignBuilder<'static, ()> {
        CampaignBuilder {
            world: (),
            pipeline: PipelineConfig::default(),
            mode: CampaignMode::Batch,
            channel_capacity: 1024,
            observation_batch: 64,
            watched: Vec::new(),
            granularity: None,
            window_interval: SimDuration::from_days(1),
            start: None,
            max_tracked: 8,
            rate_feedback: false,
            queue_model: QueueModel::default(),
            retention_windows: None,
            churn: None,
            discovery: None,
            checkpoint_every: None,
            checkpoint_to: None,
            resume_from: None,
            stop: None,
            telemetry: None,
        }
    }
}

/// Builder for a [`Campaign`].
///
/// The type parameter tracks whether a backend is attached yet: `run()` only
/// exists once [`CampaignBuilder::world`] has been called, so "forgot the
/// backend" is a compile error, not a runtime one. The lifetime is the
/// telemetry observer's ([`CampaignBuilder::telemetry`]); without one it is
/// `'static`.
#[derive(Clone)]
pub struct CampaignBuilder<'t, W> {
    world: W,
    pipeline: PipelineConfig,
    mode: CampaignMode,
    channel_capacity: usize,
    observation_batch: usize,
    watched: Vec<Ipv6Prefix>,
    granularity: Option<u8>,
    window_interval: SimDuration,
    start: Option<SimTime>,
    max_tracked: usize,
    rate_feedback: bool,
    queue_model: QueueModel,
    retention_windows: Option<u64>,
    churn: Option<WatchChurn>,
    discovery: Option<DiscoveryConfig>,
    checkpoint_every: Option<u64>,
    checkpoint_to: Option<PathBuf>,
    resume_from: Option<PathBuf>,
    stop: Option<StopSignal>,
    telemetry: Option<&'t dyn StreamObserver>,
}

impl<W: std::fmt::Debug> std::fmt::Debug for CampaignBuilder<'_, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignBuilder")
            .field("world", &self.world)
            .field("pipeline", &self.pipeline)
            .field("mode", &self.mode)
            .field("channel_capacity", &self.channel_capacity)
            .field("observation_batch", &self.observation_batch)
            .field("watched", &self.watched)
            .field("granularity", &self.granularity)
            .field("window_interval", &self.window_interval)
            .field("start", &self.start)
            .field("max_tracked", &self.max_tracked)
            .field("rate_feedback", &self.rate_feedback)
            .field("queue_model", &self.queue_model)
            .field("retention_windows", &self.retention_windows)
            .field("churn", &self.churn)
            .field("discovery", &self.discovery)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("checkpoint_to", &self.checkpoint_to)
            .field("resume_from", &self.resume_from)
            .field("stop", &self.stop.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl<'t, W> CampaignBuilder<'t, W> {
    /// The seed controlling target generation and scan order (the paper
    /// reuses one zmap seed across its daily scans).
    pub fn seed(mut self, seed: u64) -> Self {
        self.pipeline.seed = seed;
        self
    }

    /// The probe budget in packets per second (the paper's 10,000 by
    /// default).
    pub fn rate_pps(mut self, packets_per_second: u64) -> Self {
        self.pipeline.packets_per_second = packets_per_second;
        self
    }

    /// Cap on /48s enumerated per seed /32 (bounds cost on huge
    /// announcements; scaled-down worlds use small caps).
    pub fn max_48s_per_seed(mut self, max_48s_per_seed: u64) -> Self {
        self.pipeline.max_48s_per_seed = max_48s_per_seed;
        self
    }

    /// Replace the whole methodology parameter block (granularities, virtual
    /// times, …) at once.
    pub fn pipeline_config(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// How the campaign executes (default: [`CampaignMode::Batch`]).
    pub fn mode(mut self, mode: CampaignMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bounded per-shard queue capacity, in messages (default: 1024).
    pub fn channel_capacity(mut self, channel_capacity: usize) -> Self {
        self.channel_capacity = channel_capacity;
        self
    }

    /// Observations accumulated per channel message (default: 64, promoted
    /// from the `streaming/batching_experiment_scale` bench). Larger batches
    /// amortize channel overhead without changing the report; set 1 for
    /// per-probe live-event latency in monitor mode.
    pub fn observation_batch(mut self, observation_batch: usize) -> Self {
        self.observation_batch = observation_batch;
        self
    }

    /// The /48s a [`CampaignMode::Monitor`] campaign watches.
    pub fn watch(mut self, watched_48s: Vec<Ipv6Prefix>) -> Self {
        self.watched = watched_48s;
        self
    }

    /// Probing granularity inside each watched /48 in monitor mode
    /// (default: the pipeline's detection granularity).
    pub fn monitor_granularity(mut self, granularity: u8) -> Self {
        self.granularity = Some(granularity);
        self
    }

    /// Virtual time between monitor windows (default: 24 hours).
    pub fn window_interval(mut self, window_interval: SimDuration) -> Self {
        self.window_interval = window_interval;
        self
    }

    /// Virtual time the monitor's first window starts (default: the
    /// pipeline's first-snapshot time).
    pub fn start(mut self, start: SimTime) -> Self {
        self.start = Some(start);
        self
    }

    /// Cap on devices folded into the monitor's tracking report
    /// (default: 8).
    pub fn max_tracked(mut self, max_tracked: usize) -> Self {
        self.max_tracked = max_tracked;
        self
    }

    /// Whether the prober adapts its virtual-time rate to the deterministic
    /// virtual-queue model (default: off). Feedback-on runs are still
    /// bit-reproducible — the AIMD signal is a pure function of the
    /// configuration, the target order and virtual time, never of OS
    /// scheduling — and compose with any producer count in
    /// [`CampaignMode::Streamed`] and [`CampaignMode::Monitor`].
    /// [`CampaignMode::Batch`] has no shards to model and ignores the
    /// feedback signal, though the queue model is still validated (an
    /// inverted-watermark model is rejected in every mode rather than
    /// silently carried).
    pub fn rate_feedback(mut self, rate_feedback: bool) -> Self {
        self.rate_feedback = rate_feedback;
        self
    }

    /// The virtual-queue feedback model consulted when
    /// [`CampaignBuilder::rate_feedback`] is on: per-shard drain rate plus
    /// the depth watermarks for multiplicative back-off and additive
    /// recovery (default: [`QueueModel::unbounded`], which leaves the
    /// trajectory identical to feedback-off).
    pub fn queue_model(mut self, queue_model: QueueModel) -> Self {
        self.queue_model = queue_model;
        self
    }

    /// Shorthand for [`CampaignBuilder::queue_model`] with the given
    /// per-shard drain rate (observations retired per virtual second) and
    /// the default watermarks.
    pub fn drain_rate(mut self, drain_rate: u64) -> Self {
        self.queue_model = QueueModel::with_drain_rate(drain_rate);
        self
    }

    /// Bound the monitor's memory to this many windows of history
    /// (default: retain everything).
    pub fn retention_windows(mut self, retention_windows: u64) -> Self {
        self.retention_windows = Some(retention_windows);
        self
    }

    /// Make the monitor's watch list *live*, revised every `refresh_every`
    /// windows: each revision folds the closing epoch's density state
    /// through a boundary re-expansion probe, admitting newly-dense /48s in
    /// deterministic order and evicting prefixes that went quiet. Zero is a
    /// typed error ([`CampaignError::ZeroRefreshCadence`]) — leave churn off
    /// instead. Churning runs keep every reproducibility guarantee: reports
    /// stay byte-identical across producer counts and across live vs.
    /// recorded-replay backends.
    pub fn refresh_every(mut self, refresh_every: u64) -> Self {
        let mut churn = self.churn.unwrap_or_default();
        churn.refresh_every = refresh_every;
        self.churn = Some(churn);
        self
    }

    /// Bound the churning monitor's watch list to this many /48s after each
    /// revision (default: 64 once churn is enabled). Implies churn: setting
    /// a capacity without [`CampaignBuilder::refresh_every`] revises every
    /// window. Zero is a typed error
    /// ([`CampaignError::ZeroWatchCapacity`]).
    pub fn watch_capacity(mut self, watch_capacity: usize) -> Self {
        let mut churn = self.churn.unwrap_or_default();
        churn.watch_capacity = watch_capacity;
        self.churn = Some(churn);
        self
    }

    /// Replace the whole watch-list churn block at once (re-expansion block
    /// length, per-block candidate cap, cadence, capacity).
    pub fn watch_churn(mut self, churn: WatchChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Enable adaptive hierarchical target discovery: the monitor grows a
    /// confidence-split prefix tree rooted at the world's BGP announcements,
    /// folds every epoch's density evidence into it, sweeps a bounded probe
    /// budget over the most promising frontier at each churn boundary, and
    /// feeds the tree's confidently-dense /48s into the watch-list revision
    /// alongside the seeded re-expansion candidates. With discovery on, an
    /// empty initial watch list is legal — the campaign bootstraps itself
    /// from the announcement topology alone. Requires
    /// [`CampaignMode::Monitor`] and watch-list churn
    /// ([`CampaignBuilder::refresh_every`]); the configuration's blocklist
    /// is honoured by every probe path (detection stream, boundary
    /// re-expansion and the discovery sweep itself).
    pub fn discovery(mut self, discovery: DiscoveryConfig) -> Self {
        self.discovery = Some(discovery);
        self
    }

    /// Write a crash-safe snapshot every `checkpoint_every` windows (and
    /// always at the final epoch and at a graceful stop). Requires a
    /// destination ([`CampaignBuilder::checkpoint_to`]) and monitor mode.
    /// Zero is a typed error ([`CampaignError::ZeroCheckpointCadence`]);
    /// with churn on, the cadence must be a whole multiple of
    /// [`CampaignBuilder::refresh_every`]
    /// ([`CampaignError::MisalignedCheckpointCadence`]). The cadence shapes
    /// the run's epoch layout, so it is part of the snapshot's configuration
    /// fingerprint.
    pub fn checkpoint_every(mut self, checkpoint_every: u64) -> Self {
        self.checkpoint_every = Some(checkpoint_every);
        self
    }

    /// Persist epoch-boundary snapshots to this file, written atomically
    /// (write to a `.tmp` sibling, then rename) so a crash mid-write never
    /// leaves a torn snapshot. Without
    /// [`CampaignBuilder::checkpoint_every`], a snapshot is written at every
    /// epoch boundary.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_to = Some(path.into());
        self
    }

    /// Resume the monitor from a snapshot file previously written via
    /// [`CampaignBuilder::checkpoint_to`] instead of starting fresh. The
    /// run's configuration, initial watch list and world must match the ones
    /// the snapshot was captured under (enforced by fingerprints); the
    /// resumed run's report and deterministic telemetry are byte-identical
    /// to an uninterrupted run.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Attach a cooperative stop signal, polled at epoch boundaries: raising
    /// it drains the epoch in flight, applies any pending watch-list
    /// revision, writes a final checkpoint if a sink is attached, and
    /// returns a report covering the completed windows.
    pub fn stop_signal(mut self, stop: StopSignal) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Attach a telemetry observer — typically a
    /// [`Telemetry`](scent_telemetry::Telemetry) registry — to the campaign.
    /// Every streaming hook point reports through it: probe accounting,
    /// deterministic routing order, per-shard ingest, merge-side rate
    /// replay, phase/epoch closes and wall-clock spans. Without an observer
    /// the hooks cost one `None` branch per observation.
    ///
    /// Only the streaming modes ([`CampaignMode::Streamed`] and
    /// [`CampaignMode::Monitor`]) have hook points; a
    /// [`CampaignMode::Batch`] campaign runs unobserved and leaves the
    /// registry empty.
    pub fn telemetry<'u>(self, telemetry: &'u dyn StreamObserver) -> CampaignBuilder<'u, W> {
        CampaignBuilder {
            world: self.world,
            pipeline: self.pipeline,
            mode: self.mode,
            channel_capacity: self.channel_capacity,
            observation_batch: self.observation_batch,
            watched: self.watched,
            granularity: self.granularity,
            window_interval: self.window_interval,
            start: self.start,
            max_tracked: self.max_tracked,
            rate_feedback: self.rate_feedback,
            queue_model: self.queue_model,
            retention_windows: self.retention_windows,
            churn: self.churn,
            discovery: self.discovery,
            checkpoint_every: self.checkpoint_every,
            checkpoint_to: self.checkpoint_to,
            resume_from: self.resume_from,
            stop: self.stop,
            telemetry: Some(telemetry),
        }
    }
}

impl<'t> CampaignBuilder<'t, ()> {
    /// Attach the measurement backend the campaign probes and reads routing
    /// state from. Any `ProbeTransport + WorldView` implementor works: the
    /// simulated [`Engine`](scent_simnet::Engine), a
    /// [`RecordedBackend`](scent_prober::RecordedBackend) replay, a
    /// `&dyn MeasurementBackend` trait object, or a third-party backend.
    pub fn world<B: ProbeTransport + WorldView + ?Sized>(
        self,
        world: &B,
    ) -> CampaignBuilder<'t, &B> {
        CampaignBuilder {
            world,
            pipeline: self.pipeline,
            mode: self.mode,
            channel_capacity: self.channel_capacity,
            observation_batch: self.observation_batch,
            watched: self.watched,
            granularity: self.granularity,
            window_interval: self.window_interval,
            start: self.start,
            max_tracked: self.max_tracked,
            rate_feedback: self.rate_feedback,
            queue_model: self.queue_model,
            retention_windows: self.retention_windows,
            churn: self.churn,
            discovery: self.discovery,
            checkpoint_every: self.checkpoint_every,
            checkpoint_to: self.checkpoint_to,
            resume_from: self.resume_from,
            stop: self.stop,
            telemetry: self.telemetry,
        }
    }
}

impl<B: ProbeTransport + WorldView + ?Sized> CampaignBuilder<'_, &B> {
    /// Run the campaign against the attached backend.
    pub fn run(self) -> Result<CampaignReport, ScentError> {
        if self.channel_capacity == 0 {
            return Err(CampaignError::ZeroChannelCapacity.into());
        }
        if self.observation_batch == 0 {
            return Err(CampaignError::ZeroObservationBatch.into());
        }
        if self.rate_feedback && !self.queue_model.is_valid() {
            return Err(CampaignError::InvalidQueueModel.into());
        }
        if let Some(churn) = &self.churn {
            if churn.refresh_every == 0 {
                return Err(CampaignError::ZeroRefreshCadence.into());
            }
            if churn.watch_capacity == 0 {
                return Err(CampaignError::ZeroWatchCapacity.into());
            }
            if churn.expansion_len > 48 {
                return Err(CampaignError::ExpansionBlockTooLong.into());
            }
            if churn.max_48s_per_seed == 0 {
                return Err(CampaignError::ZeroExpansionBudget.into());
            }
        }
        if self.checkpoint_every == Some(0) {
            return Err(CampaignError::ZeroCheckpointCadence.into());
        }
        if let (Some(churn), Some(every)) = (&self.churn, self.checkpoint_every) {
            if every % churn.refresh_every != 0 {
                return Err(CampaignError::MisalignedCheckpointCadence.into());
            }
        }
        let wants_checkpoint = self.checkpoint_every.is_some()
            || self.checkpoint_to.is_some()
            || self.resume_from.is_some()
            || self.stop.is_some();
        if wants_checkpoint && !matches!(self.mode, CampaignMode::Monitor { .. }) {
            return Err(CampaignError::CheckpointRequiresMonitor.into());
        }
        if let Some(discovery) = &self.discovery {
            if !matches!(self.mode, CampaignMode::Monitor { .. }) {
                return Err(CampaignError::DiscoveryRequiresMonitor.into());
            }
            if self.churn.is_none() {
                return Err(CampaignError::DiscoveryRequiresChurn.into());
            }
            if discovery.probe_budget == 0 {
                return Err(CampaignError::ZeroDiscoveryBudget.into());
            }
            if discovery.rounds == 0 {
                return Err(CampaignError::ZeroDiscoveryRounds.into());
            }
            if !(1..=8).contains(&discovery.branch_bits) {
                return Err(CampaignError::InvalidDiscoveryBranch.into());
            }
        }
        match self.mode {
            CampaignMode::Batch => Ok(CampaignReport::Pipeline(
                Pipeline::new(self.pipeline).run(self.world),
            )),
            CampaignMode::Streamed { shards, producers } => {
                if shards == 0 {
                    return Err(CampaignError::NoShards.into());
                }
                if producers == 0 {
                    return Err(CampaignError::NoProducers.into());
                }
                let config = StreamConfig {
                    pipeline: self.pipeline,
                    shards,
                    producers,
                    channel_capacity: self.channel_capacity,
                    observation_batch: self.observation_batch,
                    rate_feedback: self.rate_feedback,
                    queue_model: self.queue_model,
                };
                Ok(CampaignReport::Pipeline(
                    StreamPipeline::new(config).run_observed(self.world, self.telemetry)?,
                ))
            }
            CampaignMode::Monitor {
                windows,
                shards,
                producers,
            } => {
                if shards == 0 {
                    return Err(CampaignError::NoShards.into());
                }
                if producers == 0 {
                    return Err(CampaignError::NoProducers.into());
                }
                if windows == 0 {
                    return Err(CampaignError::NoWindows.into());
                }
                if self.watched.is_empty() && self.discovery.is_none() {
                    // Discovery bootstraps an empty watch list from the
                    // announcement topology; without it, nothing ever would.
                    return Err(CampaignError::EmptyWatchList.into());
                }
                let config = MonitorConfig {
                    shards,
                    producers,
                    channel_capacity: self.channel_capacity,
                    observation_batch: self.observation_batch,
                    seed: self.pipeline.seed,
                    packets_per_second: self.pipeline.packets_per_second,
                    granularity: self
                        .granularity
                        .unwrap_or(self.pipeline.detection_granularity),
                    windows,
                    window_interval: self.window_interval,
                    start: self.start.unwrap_or(self.pipeline.first_snapshot),
                    max_tracked: self.max_tracked,
                    rate_feedback: self.rate_feedback,
                    queue_model: self.queue_model,
                    retention_windows: self.retention_windows,
                    churn: self.churn,
                    discovery: self.discovery,
                    checkpoint_every: self.checkpoint_every,
                    inject_shard_panic: None,
                };
                let resume = match &self.resume_from {
                    Some(path) => {
                        let bytes = FileCheckpointStore::new(path).load()?;
                        Some(MonitorSnapshot::from_bytes(&bytes)?)
                    }
                    None => None,
                };
                let mut file_sink = self.checkpoint_to.map(FileCheckpointStore::new);
                let control = MonitorControl {
                    observer: self.telemetry,
                    sink: file_sink
                        .as_mut()
                        .map(|store| store as &mut dyn CheckpointSink),
                    resume,
                    stop: self.stop,
                };
                let report = StreamMonitor::new(config).run_controlled(
                    self.world,
                    &self.watched,
                    control,
                )?;
                Ok(CampaignReport::Monitor(report))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scent_simnet::{scenarios, Engine};

    #[test]
    fn invalid_configurations_are_typed_errors() {
        let engine = Engine::build(scenarios::versatel_like(1)).unwrap();
        let err = Campaign::builder()
            .world(&engine)
            .mode(CampaignMode::Streamed {
                shards: 0,
                producers: 1,
            })
            .run()
            .unwrap_err();
        assert_eq!(err, ScentError::Campaign(CampaignError::NoShards));

        let err = Campaign::builder()
            .world(&engine)
            .mode(CampaignMode::Streamed {
                shards: 2,
                producers: 0,
            })
            .run()
            .unwrap_err();
        assert_eq!(err, ScentError::Campaign(CampaignError::NoProducers));

        let err = Campaign::builder()
            .world(&engine)
            .rate_feedback(true)
            .queue_model(scent_prober::QueueModel {
                drain_rate: Some(16),
                high_watermark: 8,
                low_watermark: 8, // inverted: low must be strictly below high
                ..scent_prober::QueueModel::unbounded()
            })
            .run()
            .unwrap_err();
        assert_eq!(err, ScentError::Campaign(CampaignError::InvalidQueueModel));

        let err = Campaign::builder()
            .world(&engine)
            .channel_capacity(0)
            .mode(CampaignMode::Batch)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ScentError::Campaign(CampaignError::ZeroChannelCapacity)
        );

        let err = Campaign::builder()
            .world(&engine)
            .observation_batch(0)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ScentError::Campaign(CampaignError::ZeroObservationBatch)
        );

        let err = Campaign::builder()
            .world(&engine)
            .mode(CampaignMode::Monitor {
                windows: 2,
                shards: 2,
                producers: 1,
            })
            .run()
            .unwrap_err();
        assert_eq!(err, ScentError::Campaign(CampaignError::EmptyWatchList));

        let err = Campaign::builder()
            .world(&engine)
            .watch(vec!["2001:16b8:100::/48".parse().unwrap()])
            .mode(CampaignMode::Monitor {
                windows: 0,
                shards: 2,
                producers: 1,
            })
            .run()
            .unwrap_err();
        assert_eq!(err, ScentError::Campaign(CampaignError::NoWindows));
    }

    #[test]
    fn monitor_mode_runs_through_the_facade() {
        let engine = Engine::build(scenarios::continuous_world(13)).unwrap();
        let watched: Vec<Ipv6Prefix> = engine
            .pools()
            .iter()
            .filter(|p| p.config.prefix.len() <= 48)
            .flat_map(|p| p.config.prefix.subnets(48).unwrap())
            .collect();
        let report = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .mode(CampaignMode::Monitor {
                windows: 2,
                shards: 2,
                producers: 1,
            })
            .watch(watched)
            .monitor_granularity(56)
            .start(SimTime::at(10, 9))
            .max_tracked(4)
            .run()
            .unwrap();
        assert!(report.pipeline().is_none());
        let monitor = report
            .monitor()
            .expect("monitor mode yields a monitor report");
        assert_eq!(monitor.windows, 2);
        assert!(monitor.observations > 0);
        assert!(!monitor.rotating_48s.is_empty());
        assert!(monitor.tracking.devices.len() <= 4);
    }
}

//! The workspace error hierarchy.
//!
//! Every fallible entry point of the umbrella crate funnels into
//! [`ScentError`], which wraps the typed errors of the member crates
//! (world-building, RIB parsing) plus the campaign-level configuration
//! errors of the [`Campaign`](crate::Campaign) facade. All of them implement
//! [`std::error::Error`], so binaries can `?` them out of `main` or print
//! them via `Display`.

use std::fmt;

use scent_bgp::RibParseError;
use scent_checkpoint::CheckpointError;
use scent_simnet::WorldError;
use scent_stream::StreamError;

/// A campaign was configured inconsistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignError {
    /// A streamed or monitoring campaign was asked to run with zero shards.
    NoShards,
    /// A streamed or monitoring campaign was asked to run with zero probe
    /// producers.
    NoProducers,
    /// The bounded shard channels were given zero capacity.
    ZeroChannelCapacity,
    /// The observation-batching knob was set to zero (batches must hold at
    /// least one observation).
    ZeroObservationBatch,
    /// A monitoring campaign has no watched /48s to probe.
    EmptyWatchList,
    /// A monitoring campaign was asked to observe zero windows.
    NoWindows,
    /// The virtual-queue feedback model was configured with inverted
    /// watermarks (the low watermark must be strictly below the high one).
    InvalidQueueModel,
    /// Watch-list churn was configured with a zero refresh cadence (the
    /// watch list would never be revised; leave churn off instead).
    ZeroRefreshCadence,
    /// Watch-list churn was configured with a zero watch capacity (a
    /// monitor that may watch nothing is a misconfiguration, not a run).
    ZeroWatchCapacity,
    /// Watch-list churn was configured with a re-expansion block longer
    /// than a /48 (blocks must enclose the watched /48s).
    ExpansionBlockTooLong,
    /// Watch-list churn was configured with a zero candidate budget
    /// (`max_48s_per_seed`): the boundary re-expansion could never probe a
    /// candidate, so the watch list could only ever shrink.
    ZeroExpansionBudget,
    /// Checkpointing was configured with a zero cadence (a snapshot would
    /// never be written; leave checkpointing off instead).
    ZeroCheckpointCadence,
    /// Checkpointing and watch-list churn were configured with misaligned
    /// cadences: the checkpoint cadence must be a whole multiple of the
    /// churn refresh cadence, because snapshots are taken at epoch
    /// boundaries and epochs are cut by the churn cadence.
    MisalignedCheckpointCadence,
    /// Checkpointing, resume or a stop signal were configured on a
    /// non-monitor campaign; only [`CampaignMode::Monitor`] runs long enough
    /// to suspend and resume.
    ///
    /// [`CampaignMode::Monitor`]: crate::CampaignMode::Monitor
    CheckpointRequiresMonitor,
    /// Adaptive discovery was configured on a non-monitor campaign; the
    /// discovery tree evolves at monitor epoch boundaries, which the batch
    /// and streamed pipelines do not have.
    DiscoveryRequiresMonitor,
    /// Adaptive discovery was configured without watch-list churn: the
    /// tree's dense /48s enter the watch list through churn revisions, so a
    /// churn-less discovery run could never act on what it discovers.
    DiscoveryRequiresChurn,
    /// Adaptive discovery was configured with a zero per-boundary probe
    /// budget (the tree could never gather evidence).
    ZeroDiscoveryBudget,
    /// Adaptive discovery was configured with zero plan/probe/fold rounds
    /// per boundary.
    ZeroDiscoveryRounds,
    /// Adaptive discovery was configured with a branch factor outside
    /// 1..=8 bits per tree level.
    InvalidDiscoveryBranch,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::NoShards => write!(f, "campaign needs at least one inference shard"),
            CampaignError::NoProducers => {
                write!(f, "campaign needs at least one probe producer")
            }
            CampaignError::ZeroChannelCapacity => {
                write!(f, "bounded shard channels need non-zero capacity")
            }
            CampaignError::ZeroObservationBatch => {
                write!(f, "observation batches must hold at least one observation")
            }
            CampaignError::EmptyWatchList => {
                write!(f, "monitoring campaign has no watched /48s; call watch(..)")
            }
            CampaignError::NoWindows => {
                write!(f, "monitoring campaign must observe at least one window")
            }
            CampaignError::InvalidQueueModel => {
                write!(
                    f,
                    "queue model watermarks are inverted; low_watermark must be below high_watermark"
                )
            }
            CampaignError::ZeroRefreshCadence => {
                write!(
                    f,
                    "watch-list churn needs a non-zero refresh cadence (refresh_every)"
                )
            }
            CampaignError::ZeroWatchCapacity => {
                write!(
                    f,
                    "watch-list churn needs a non-zero watch capacity (watch_capacity)"
                )
            }
            CampaignError::ExpansionBlockTooLong => {
                write!(
                    f,
                    "watch-list churn re-expansion blocks must be /48 or shorter (expansion_len)"
                )
            }
            CampaignError::ZeroExpansionBudget => {
                write!(
                    f,
                    "watch-list churn needs a non-zero re-expansion candidate budget \
                     (max_48s_per_seed)"
                )
            }
            CampaignError::ZeroCheckpointCadence => {
                write!(
                    f,
                    "checkpointing needs a non-zero cadence (checkpoint_every)"
                )
            }
            CampaignError::MisalignedCheckpointCadence => {
                write!(
                    f,
                    "checkpoint cadence must be a whole multiple of the churn \
                     refresh cadence (checkpoint_every % refresh_every == 0)"
                )
            }
            CampaignError::CheckpointRequiresMonitor => {
                write!(
                    f,
                    "checkpoint, resume and stop signals require CampaignMode::Monitor"
                )
            }
            CampaignError::DiscoveryRequiresMonitor => {
                write!(f, "adaptive discovery requires CampaignMode::Monitor")
            }
            CampaignError::DiscoveryRequiresChurn => {
                write!(
                    f,
                    "adaptive discovery requires watch-list churn; call churn(..)"
                )
            }
            CampaignError::ZeroDiscoveryBudget => {
                write!(
                    f,
                    "adaptive discovery needs a non-zero per-boundary probe budget \
                     (probe_budget)"
                )
            }
            CampaignError::ZeroDiscoveryRounds => {
                write!(
                    f,
                    "adaptive discovery needs at least one plan/probe/fold round \
                     per boundary (rounds)"
                )
            }
            CampaignError::InvalidDiscoveryBranch => {
                write!(
                    f,
                    "adaptive discovery branch factor must be 1..=8 bits per level \
                     (branch_bits)"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Any error the followscent workspace can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ScentError {
    /// A simulated world failed to validate or build.
    World(WorldError),
    /// A RIB table dump failed to parse.
    RibParse(RibParseError),
    /// A campaign was configured inconsistently.
    Campaign(CampaignError),
    /// A checkpoint could not be written, read back or resumed from.
    Checkpoint(CheckpointError),
    /// An inference shard worker panicked mid-run. The run joined every
    /// surviving worker and drained cleanly before reporting — no thread is
    /// leaked and no other campaign's state is touched — but this run's
    /// report is unrecoverable.
    ShardPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
    },
}

impl fmt::Display for ScentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScentError::World(e) => write!(f, "world configuration: {e}"),
            ScentError::RibParse(e) => write!(f, "RIB table parse: {e}"),
            ScentError::Campaign(e) => write!(f, "campaign configuration: {e}"),
            ScentError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ScentError::ShardPanicked { shard } => {
                write!(f, "inference shard {shard} panicked mid-run")
            }
        }
    }
}

impl std::error::Error for ScentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScentError::World(e) => Some(e),
            ScentError::RibParse(e) => Some(e),
            ScentError::Campaign(e) => Some(e),
            ScentError::Checkpoint(e) => Some(e),
            ScentError::ShardPanicked { .. } => None,
        }
    }
}

impl From<WorldError> for ScentError {
    fn from(e: WorldError) -> Self {
        ScentError::World(e)
    }
}

impl From<RibParseError> for ScentError {
    fn from(e: RibParseError) -> Self {
        ScentError::RibParse(e)
    }
}

impl From<CampaignError> for ScentError {
    fn from(e: CampaignError) -> Self {
        ScentError::Campaign(e)
    }
}

impl From<CheckpointError> for ScentError {
    fn from(e: CheckpointError) -> Self {
        ScentError::Checkpoint(e)
    }
}

impl From<StreamError> for ScentError {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Checkpoint(inner) => ScentError::Checkpoint(inner),
            StreamError::ShardPanicked { shard } => ScentError::ShardPanicked { shard },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let world: ScentError = WorldError::NoProviders.into();
        assert_eq!(
            world.to_string(),
            "world configuration: world has no providers"
        );
        assert!(world.source().is_some());

        let campaign: ScentError = CampaignError::EmptyWatchList.into();
        assert!(campaign.to_string().contains("watched /48s"));
        let discovery: ScentError = CampaignError::DiscoveryRequiresChurn.into();
        assert!(discovery.to_string().contains("churn"));
        assert_eq!(
            campaign,
            ScentError::Campaign(CampaignError::EmptyWatchList)
        );

        // Stream errors split: checkpoint trouble keeps its typed variant,
        // a dead shard surfaces as the dedicated panic variant.
        let panicked: ScentError = StreamError::ShardPanicked { shard: 3 }.into();
        assert_eq!(panicked, ScentError::ShardPanicked { shard: 3 });
        assert!(panicked.to_string().contains("shard 3"));
        assert!(panicked.source().is_none());
        let checkpoint: ScentError = StreamError::Checkpoint(CheckpointError::Truncated).into();
        assert_eq!(
            checkpoint,
            ScentError::Checkpoint(CheckpointError::Truncated)
        );
    }
}

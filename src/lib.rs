//! Reproduction of *"Follow the Scent: Defeating IPv6 Prefix Rotation
//! Privacy"* (IMC 2021): a deterministic simulated IPv6 Internet, the
//! paper's scanning tools and inference algorithms, and a streaming
//! monitoring engine — unified behind one backend-agnostic [`Campaign`]
//! facade.
//!
//! # Quickstart
//!
//! Build a world, attach it as the campaign backend, pick a mode, run:
//!
//! ```
//! use followscent::simnet::{scenarios, Engine, WorldScale};
//! use followscent::{Campaign, CampaignMode, ScentError};
//!
//! fn main() -> Result<(), ScentError> {
//!     // Any backend works: the simulated Internet, a recorded replay, or a
//!     // third-party `ProbeTransport + WorldView` implementor.
//!     let engine = Engine::build(scenarios::paper_world(71, WorldScale::small()))?;
//!
//!     // Two inference shards consume observations probed by four parallel
//!     // producers; the merged virtual clock keeps the run bit-identical to
//!     // a single-threaded one.
//!     let report = Campaign::builder()
//!         .world(&engine)
//!         .seed(0xf0110)
//!         .rate_pps(10_000)
//!         .max_48s_per_seed(128)
//!         .mode(CampaignMode::Streamed { shards: 2, producers: 4 })
//!         .run()?;
//!
//!     let pipeline = report.pipeline().expect("streamed mode yields a pipeline report");
//!     assert!(!pipeline.rotating_48s.is_empty(), "rotation found");
//!     Ok(())
//! }
//! ```
//!
//! Switching `.mode(..)` to [`CampaignMode::Batch`] produces the identical
//! report on one thread — the streamed report is test-enforced equal for
//! *any* shard and producer count — and
//! [`CampaignMode::Monitor`] turns the same builder into a continuous
//! rotation monitor over a watched /48 list (`.watch(..)`) with live events
//! and passive device tracking. The watch list can be *live* too:
//! `.refresh_every(k)` + `.watch_capacity(n)` make the monitor revise its
//! own list on a cadence — evicting /48s that went quiet, admitting
//! newly-dense neighbours surfaced by a boundary re-expansion probe — which
//! closes the paper's "scan → find dense prefixes → watch them → re-expand"
//! loop while keeping runs byte-identical at any producer count (see the
//! [`campaign`] module's churn example). Adaptive probing composes with all
//! of it:
//! `.rate_feedback(true)` plus a
//! [`QueueModel`](prober::QueueModel) make the probe rate adapt (AIMD) to a
//! *deterministic virtual-queue* model of consumer capacity — a pure
//! function of the configuration and virtual time, so feedback-on runs stay
//! bit-reproducible at any `shards × producers` configuration (see the
//! [`campaign`] module example). Errors are typed end to end:
//! [`ScentError`] wraps the world-building, RIB-parsing and
//! campaign-configuration failures of the member crates, all implementing
//! [`std::error::Error`].
//!
//! # Checkpoint & resume
//!
//! Long monitoring runs can suspend and resume without losing determinism:
//! `.checkpoint_to(path)` writes a crash-safe snapshot of every piece of
//! incremental monitor state at epoch boundaries (atomic write-then-rename,
//! versioned self-validating format), `.checkpoint_every(k)` sets the
//! cadence, a [`StopSignal`](stream::StopSignal) drains the epoch in flight
//! and halts gracefully, and `.resume_from(path)` continues where the
//! snapshot left off. The resumed run's report — and its deterministic
//! telemetry — is **byte-identical** to the uninterrupted run, at any shard
//! or producer count:
//!
//! ```
//! use followscent::simnet::{scenarios, Engine};
//! use followscent::stream::StopSignal;
//! use followscent::{Campaign, CampaignMode, ScentError};
//!
//! fn main() -> Result<(), ScentError> {
//!     let engine = Engine::build(scenarios::continuous_world(13))?;
//!     let watched = vec!["2001:16b8:100::/48".parse().unwrap()];
//!     let path = std::env::temp_dir().join(format!("scent-qs-{}.ckpt", std::process::id()));
//!     let mode = CampaignMode::Monitor { windows: 4, shards: 2, producers: 2 };
//!     let base = || {
//!         Campaign::builder()
//!             .world(&engine)
//!             .watch(watched.clone())
//!             .checkpoint_every(2)
//!             .mode(mode)
//!     };
//!     // The uninterrupted run is the reference.
//!     let full = base().run()?;
//!     // Raise the stop signal up front: the run halts at the first epoch
//!     // boundary (two windows in), leaving a snapshot behind.
//!     let stop = StopSignal::new();
//!     stop.request_stop();
//!     let half = base().checkpoint_to(&path).stop_signal(stop).run()?;
//!     assert_eq!(half.monitor().unwrap().windows, 2);
//!     // Resuming finishes the remaining windows: same report, byte for byte.
//!     let resumed = base().resume_from(&path).run()?;
//!     std::fs::remove_file(&path).ok();
//!     assert_eq!(resumed.monitor().unwrap(), full.monitor().unwrap());
//!     Ok(())
//! }
//! ```
//!
//! # Telemetry
//!
//! Attach a [`telemetry::Telemetry`] registry with
//! [`CampaignBuilder::telemetry`](crate::campaign::CampaignBuilder::telemetry)
//! and every streaming run journals what it did: typed counters, per-window
//! virtual-time aggregates, rate back-off/recovery events and epoch
//! revisions, exportable as Prometheus text or JSONL. The *deterministic*
//! snapshot tier is — like the reports themselves — a pure function of
//! `(config, world seed)`, byte-identical across shard counts, producer
//! counts and live vs. recorded replay; wall-clock diagnostics live in a
//! separate profile tier.
//!
//! ```
//! use followscent::simnet::{scenarios, Engine, WorldScale};
//! use followscent::telemetry::{self, Telemetry};
//! use followscent::{Campaign, CampaignMode, ScentError};
//!
//! fn main() -> Result<(), ScentError> {
//!     let engine = Engine::build(scenarios::paper_world(71, WorldScale::small()))?;
//!     let registry = Telemetry::new();
//!     Campaign::builder()
//!         .world(&engine)
//!         .max_48s_per_seed(128)
//!         .mode(CampaignMode::Streamed { shards: 2, producers: 4 })
//!         .telemetry(&registry)
//!         .run()?;
//!     let snapshot = registry.snapshot();
//!     assert!(snapshot.deterministic.observations > 0);
//!     assert_eq!(snapshot.topology.producers, 4);
//!     // Prometheus text exposition and a JSONL event journal, ready to ship.
//!     let text = telemetry::prometheus(&snapshot);
//!     assert!(text.contains("scent_observations_total"));
//!     let journal = telemetry::events_jsonl(&snapshot.deterministic.events);
//!     assert!(journal.lines().all(|l| l.starts_with('{')));
//!     Ok(())
//! }
//! ```
//!
//! # Multi-campaign scheduling
//!
//! One operator, N campaigns, one probe budget: the [`Scheduler`] runs any
//! number of monitoring campaigns — distinct worlds, watch lists, cadences,
//! feedback configurations — over a single global virtual clock, splitting
//! the packets-per-second budget by weighted fair share (largest-remainder
//! rounding: the integer shares always sum to the budget exactly). Tenants
//! that finish, exhaust their watch list or honor a stop signal *park*,
//! releasing their share to the survivors; a shard panic inside one tenant
//! surfaces as a typed error in that tenant's outcome while every neighbor
//! keeps running. A campaign's report and deterministic telemetry depend
//! only on its own configuration and budget trajectory — running among
//! neighbors is byte-identical to running solo at the same share
//! (test-enforced across producer counts and live vs. recorded backends):
//!
//! ```
//! use followscent::sched::SchedError;
//! use followscent::simnet::{scenarios, Engine};
//! use followscent::stream::MonitorConfig;
//! use followscent::Scheduler;
//!
//! fn main() -> Result<(), SchedError> {
//!     let engine = Engine::build(scenarios::continuous_world(13)).unwrap();
//!     let watched = vec!["2001:16b8:100::/48".parse().unwrap()];
//!     let config = MonitorConfig {
//!         windows: 2,
//!         shards: 2,
//!         ..MonitorConfig::default()
//!     };
//!     // Two tenants share 3000 pps at weights 2:1 — 2000 and 1000 pps.
//!     let report = Scheduler::builder()
//!         .global_pps(3_000)
//!         .add(
//!             followscent::sched::Campaign::new(&engine, config.clone(), watched.clone()),
//!             2,
//!         )
//!         .add(followscent::sched::Campaign::new(&engine, config, watched), 1)
//!         .run()?;
//!     assert_eq!(report.allocations[0].shares, vec![(0, 2_000), (1, 1_000)]);
//!     let monitor = report.tenants[0].outcome.as_ref().unwrap();
//!     assert_eq!(monitor.windows, 2);
//!     Ok(())
//! }
//! ```
//!
//! # Workspace map
//!
//! * [`ipv6`] — addresses, prefixes, EUI-64/MAC arithmetic, ICMPv6 wire
//!   formats.
//! * [`oui`] — the MAC-vendor (OUI) registry.
//! * [`bgp`] — RIB, prefix trie, AS metadata.
//! * [`simnet`] — the deterministic simulated IPv6 Internet.
//! * [`prober`] — zmap6/yarrp-style scanners, pacing, target generation, the
//!   `ProbeTransport` + `WorldView` backend traits, and the record/replay
//!   backends.
//! * [`core`] — the paper's inference and tracking algorithms (batch and
//!   incremental).
//! * [`discovery`] — adaptive hierarchical target discovery: the
//!   confidence-split prefix tree, Wilson-bound density certificates,
//!   probe blocklists and budgeted frontier sweeps.
//! * [`stream`] — the sharded streaming monitor built on the incremental
//!   algorithms: continuous rotation detection with bounded memory.
//! * [`checkpoint`] — the versioned snapshot codec: the
//!   [`Checkpointable`](checkpoint::Checkpointable) trait, the framed
//!   container format with fingerprints and checksum, typed
//!   [`CheckpointError`](checkpoint::CheckpointError)s, and the crash-safe
//!   [`FileCheckpointStore`](checkpoint::FileCheckpointStore).
//! * [`telemetry`] — the deterministic observability layer: the
//!   [`StreamObserver`](telemetry::StreamObserver) hook trait, the
//!   [`Telemetry`](telemetry::Telemetry) registry and its
//!   Prometheus/JSONL exporters.
//! * [`sched`] — the deterministic multi-campaign scheduler: N weighted
//!   tenants over one probe budget, with fair-share allocation, parking,
//!   and per-tenant failure isolation.
//! * [`experiments`] — the table/figure reproduction binaries' library code.
//! * [`campaign`] — the [`Campaign`] facade unifying batch, streamed and
//!   monitoring runs over any backend.
//! * [`error`] — the [`ScentError`] hierarchy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod error;

pub use campaign::{Campaign, CampaignBuilder, CampaignMode, CampaignReport};
pub use error::{CampaignError, ScentError};
pub use scent_sched::Scheduler;

pub use scent_bgp as bgp;
pub use scent_checkpoint as checkpoint;
pub use scent_core as core;
pub use scent_discovery as discovery;
pub use scent_experiments as experiments;
pub use scent_ipv6 as ipv6;
pub use scent_oui as oui;
pub use scent_prober as prober;
pub use scent_sched as sched;
pub use scent_simnet as simnet;
pub use scent_stream as stream;
pub use scent_telemetry as telemetry;

// Compile-check (and where runnable, run) every fenced Rust snippet in the
// repo-level documentation as doctests, so the docs can't drift from the API.
// `cargo test --doc` exercises these; CI runs it in the docs leg.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../ARCHITECTURE.md")]
mod architecture_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../docs/PERFORMANCE.md")]
mod performance_doctests {}

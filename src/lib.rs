//! Umbrella crate re-exporting the followscent workspace.
pub use scent_bgp as bgp;
pub use scent_core as core;
pub use scent_experiments as experiments;
pub use scent_ipv6 as ipv6;
pub use scent_oui as oui;
pub use scent_prober as prober;
pub use scent_simnet as simnet;

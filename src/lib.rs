//! Umbrella crate re-exporting the followscent workspace.
//!
//! * [`ipv6`] — addresses, prefixes, EUI-64/MAC arithmetic, ICMPv6 wire formats.
//! * [`oui`] — the MAC-vendor (OUI) registry.
//! * [`bgp`] — RIB, prefix trie, AS metadata.
//! * [`simnet`] — the deterministic simulated IPv6 Internet.
//! * [`prober`] — zmap6/yarrp-style scanners, pacing, target generation.
//! * [`core`] — the paper's inference and tracking algorithms (batch and
//!   incremental).
//! * [`stream`] — the sharded streaming monitor built on the incremental
//!   algorithms: continuous rotation detection with bounded memory.
//! * [`experiments`] — the table/figure reproduction binaries' library code.
pub use scent_bgp as bgp;
pub use scent_core as core;
pub use scent_experiments as experiments;
pub use scent_ipv6 as ipv6;
pub use scent_oui as oui;
pub use scent_prober as prober;
pub use scent_simnet as simnet;
pub use scent_stream as stream;

//! Deterministic telemetry dump: run representative observed campaigns,
//! self-check the deterministic telemetry tier across producer counts, and
//! print it.
//!
//! Two layers of checking stack on this binary:
//!
//! * **In-process**: every scenario runs at multiple producer counts and the
//!   binary itself asserts the deterministic dumps (Prometheus text plus the
//!   JSONL event journal) are byte-equal before printing them once. A
//!   producer-count dependence aborts the run with a diff-sized panic.
//! * **Cross-process**: the CI determinism job runs the binary twice and
//!   byte-compares the outputs, exactly like `determinism_check` does for
//!   reports. Everything printed by default is deterministic-tier or
//!   topology-tier state; wall-clock profile telemetry (stalls, channel
//!   high-water, elapsed spans) is printed only under `--profile`, which CI
//!   never passes.

use followscent::prober::QueueModel;
use followscent::simnet::{scenarios, Engine, SimTime, WorldScale};
use followscent::stream::WatchChurn;
use followscent::telemetry::{self, Telemetry, TelemetrySnapshot};
use followscent::{Campaign, CampaignMode, ScentError};

/// The deterministic tier rendered for comparison and printing: Prometheus
/// text followed by the JSONL event journal.
fn deterministic_dump(snapshot: &TelemetrySnapshot) -> String {
    let mut out = telemetry::deterministic_text(&snapshot.deterministic);
    out.push_str(&telemetry::events_jsonl(&snapshot.deterministic.events));
    out
}

/// Assert every producer count produced the same deterministic dump, print
/// it once, then print the (producer-count-shaped) topology tier per count.
fn emit(section: &str, runs: &[(usize, TelemetrySnapshot)], profile: bool) {
    let (first_producers, first) = &runs[0];
    let reference = deterministic_dump(first);
    for (producers, snapshot) in &runs[1..] {
        assert_eq!(
            reference,
            deterministic_dump(snapshot),
            "{section}: deterministic telemetry differs between \
             producers={first_producers} and producers={producers}"
        );
    }
    println!("== {section}: deterministic tier (all producer counts) ==");
    print!("{reference}");
    for (producers, snapshot) in runs {
        println!("== {section}: topology tier, producers={producers} ==");
        print!("{}", telemetry::topology_text(&snapshot.topology));
    }
    if profile {
        for (producers, snapshot) in runs {
            println!("== {section}: profile tier (wall clock), producers={producers} ==");
            print!("{}", telemetry::profile_text(&snapshot.profile));
        }
    }
}

fn main() -> Result<(), ScentError> {
    let profile = std::env::args().any(|arg| arg == "--profile");

    // Streamed discovery with virtual-queue feedback, across producer
    // counts.
    let world = scenarios::paper_world(2024, WorldScale::small());
    let mut runs = Vec::new();
    for producers in [1usize, 4] {
        let engine = Engine::build(world.clone())?;
        let registry = Telemetry::new();
        Campaign::builder()
            .world(&engine)
            .max_48s_per_seed(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(2_000),
                high_watermark: 4_096,
                low_watermark: 512,
                ..QueueModel::unbounded()
            })
            .mode(CampaignMode::Streamed {
                shards: 2,
                producers,
            })
            .telemetry(&registry)
            .run()?;
        runs.push((producers, registry.snapshot()));
    }
    emit("streamed feedback-on", &runs, profile);

    // The churning monitor with a throttling queue model, across producer
    // counts: window aggregates, rate back-off/recovery events and epoch
    // revisions all land in the journal.
    let world = scenarios::churn_world(17);
    let engine = Engine::build(world)?;
    let start = SimTime::at(10, 9);
    let watched = vec![
        scenarios::churn_world_dense_48(&engine, start),
        engine.pools()[1].config.prefix,
    ];
    let mut runs = Vec::new();
    for producers in [1usize, 4] {
        let registry = Telemetry::new();
        Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .rate_pps(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(16),
                high_watermark: 64,
                low_watermark: 8,
                ..QueueModel::unbounded()
            })
            .watch(watched.clone())
            .watch_churn(WatchChurn {
                refresh_every: 1,
                watch_capacity: 3,
                ..WatchChurn::default()
            })
            .monitor_granularity(56)
            .start(start)
            .mode(CampaignMode::Monitor {
                windows: 4,
                shards: 2,
                producers,
            })
            .telemetry(&registry)
            .run()?;
        runs.push((producers, registry.snapshot()));
    }
    emit("monitor churn-on feedback-on", &runs, profile);
    Ok(())
}

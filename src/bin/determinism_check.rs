//! CI determinism cross-check: run representative feedback-on campaigns and
//! print their full reports.
//!
//! The CI job runs this binary twice and asserts the outputs are byte-equal.
//! Each run spawns real producer and shard threads, so the OS interleaves
//! the two processes differently on its own — any reintroduced dependence of
//! campaign results on scheduling or wall-clock timing shows up as a diff.
//! Everything printed is `Vec`-shaped report state (no hash-map iteration
//! order), and the one wall-clock diagnostic in a monitor report
//! (`backpressure_stalls`) is zeroed before printing.

use followscent::prober::QueueModel;
use followscent::simnet::{scenarios, Engine, SimTime, WorldScale};
use followscent::stream::WatchChurn;
use followscent::{Campaign, CampaignMode, ScentError};

fn main() -> Result<(), ScentError> {
    // Streamed discovery with virtual-queue feedback, across producer
    // counts: reports must be identical to each other and across process
    // runs.
    let world = scenarios::paper_world(2024, WorldScale::small());
    for producers in [1usize, 4] {
        let engine = Engine::build(world.clone())?;
        let report = Campaign::builder()
            .world(&engine)
            .max_48s_per_seed(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(2_000),
                high_watermark: 4_096,
                low_watermark: 512,
            })
            .mode(CampaignMode::Streamed {
                shards: 2,
                producers,
            })
            .run()?;
        println!("== streamed feedback-on, producers={producers} ==");
        println!("{:#?}", report.pipeline().expect("pipeline report"));
    }

    // The continuous monitor with a throttling queue model, across producer
    // counts.
    let world = scenarios::continuous_world(13);
    let engine = Engine::build(world)?;
    let watched: Vec<followscent::ipv6::Ipv6Prefix> = engine
        .pools()
        .iter()
        .filter(|p| p.config.prefix.len() <= 48)
        .flat_map(|p| p.config.prefix.subnets(48).unwrap())
        .take(2)
        .collect();
    for producers in [1usize, 4] {
        let report = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .rate_pps(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(16),
                high_watermark: 64,
                low_watermark: 8,
            })
            .watch(watched.clone())
            .monitor_granularity(56)
            .start(SimTime::at(10, 9))
            .mode(CampaignMode::Monitor {
                windows: 2,
                shards: 2,
                producers,
            })
            .run()?;
        let mut report = report.monitor().expect("monitor report").clone();
        report.backpressure_stalls = 0; // wall-clock diagnostic, not state
        println!("== monitor feedback-on, producers={producers} ==");
        println!("{report:#?}");
    }

    // The churning monitor with feedback on, across producer counts: the
    // revision history (admissions/evictions per epoch) and the final watch
    // list are part of the printed report, so any scheduling dependence in
    // the epoch machinery shows up as a byte diff.
    let world = scenarios::churn_world(17);
    let engine = Engine::build(world)?;
    let start = SimTime::at(10, 9);
    let watched = vec![
        scenarios::churn_world_dense_48(&engine, start),
        engine.pools()[1].config.prefix,
    ];
    for producers in [1usize, 4] {
        let report = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .rate_pps(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(16),
                high_watermark: 64,
                low_watermark: 8,
            })
            .watch(watched.clone())
            .watch_churn(WatchChurn {
                refresh_every: 1,
                watch_capacity: 3,
                ..WatchChurn::default()
            })
            .monitor_granularity(56)
            .start(start)
            .mode(CampaignMode::Monitor {
                windows: 4,
                shards: 2,
                producers,
            })
            .run()?;
        let mut report = report.monitor().expect("monitor report").clone();
        report.backpressure_stalls = 0; // wall-clock diagnostic, not state
        println!("== monitor churn-on feedback-on, producers={producers} ==");
        println!("{report:#?}");
    }
    Ok(())
}

//! CI determinism cross-check: run representative feedback-on campaigns and
//! print their full reports.
//!
//! The CI job runs this binary twice and asserts the outputs are byte-equal.
//! Each run spawns real producer and shard threads, so the OS interleaves
//! the two processes differently on its own — any reintroduced dependence of
//! campaign results on scheduling or wall-clock timing shows up as a diff.
//! Everything printed is `Vec`-shaped report state (no hash-map iteration
//! order), and the one wall-clock diagnostic in a monitor report
//! (`backpressure_stalls`) is zeroed before printing.

use followscent::discovery::DiscoveryConfig;
use followscent::prober::QueueModel;
use followscent::simnet::{scenarios, Engine, SimTime, WorldScale};
use followscent::stream::{MonitorConfig, StopSignal, WatchChurn};
use followscent::{Campaign, CampaignMode, ScentError, Scheduler};

fn main() -> Result<(), ScentError> {
    // Streamed discovery with virtual-queue feedback, across producer
    // counts: reports must be identical to each other and across process
    // runs.
    let world = scenarios::paper_world(2024, WorldScale::small());
    for producers in [1usize, 4] {
        let engine = Engine::build(world.clone())?;
        let report = Campaign::builder()
            .world(&engine)
            .max_48s_per_seed(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(2_000),
                high_watermark: 4_096,
                low_watermark: 512,
                ..QueueModel::unbounded()
            })
            .mode(CampaignMode::Streamed {
                shards: 2,
                producers,
            })
            .run()?;
        println!("== streamed feedback-on, producers={producers} ==");
        println!("{:#?}", report.pipeline().expect("pipeline report"));
    }

    // The continuous monitor with a throttling queue model, across producer
    // counts.
    let world = scenarios::continuous_world(13);
    let engine = Engine::build(world)?;
    let watched: Vec<followscent::ipv6::Ipv6Prefix> = engine
        .pools()
        .iter()
        .filter(|p| p.config.prefix.len() <= 48)
        .flat_map(|p| p.config.prefix.subnets(48).unwrap())
        .take(2)
        .collect();
    for producers in [1usize, 4] {
        let report = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .rate_pps(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(16),
                high_watermark: 64,
                low_watermark: 8,
                ..QueueModel::unbounded()
            })
            .watch(watched.clone())
            .monitor_granularity(56)
            .start(SimTime::at(10, 9))
            .mode(CampaignMode::Monitor {
                windows: 2,
                shards: 2,
                producers,
            })
            .run()?;
        let mut report = report.monitor().expect("monitor report").clone();
        report.backpressure_stalls = 0; // wall-clock diagnostic, not state
        println!("== monitor feedback-on, producers={producers} ==");
        println!("{report:#?}");
    }

    // The churning monitor with feedback on, across producer counts: the
    // revision history (admissions/evictions per epoch) and the final watch
    // list are part of the printed report, so any scheduling dependence in
    // the epoch machinery shows up as a byte diff.
    let world = scenarios::churn_world(17);
    let engine = Engine::build(world)?;
    let start = SimTime::at(10, 9);
    let watched = vec![
        scenarios::churn_world_dense_48(&engine, start),
        engine.pools()[1].config.prefix,
    ];
    for producers in [1usize, 4] {
        let report = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .rate_pps(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(16),
                high_watermark: 64,
                low_watermark: 8,
                ..QueueModel::unbounded()
            })
            .watch(watched.clone())
            .watch_churn(WatchChurn {
                refresh_every: 1,
                watch_capacity: 3,
                ..WatchChurn::default()
            })
            .monitor_granularity(56)
            .start(start)
            .mode(CampaignMode::Monitor {
                windows: 4,
                shards: 2,
                producers,
            })
            .run()?;
        let mut report = report.monitor().expect("monitor report").clone();
        report.backpressure_stalls = 0; // wall-clock diagnostic, not state
        println!("== monitor churn-on feedback-on, producers={producers} ==");
        println!("{report:#?}");
    }

    // Checkpoint/resume on the churning feedback-on monitor: run it
    // uninterrupted, run it again suspended at the first epoch boundary (the
    // stop signal is raised up front, so the halt point is deterministic)
    // with a snapshot written to disk, then resume from the snapshot. The
    // resumed report must be byte-identical to the uninterrupted one — both
    // are printed, so a mismatch shows up in-process *and* any scheduling
    // dependence shows up as a cross-run diff.
    let campaign = |stop: Option<StopSignal>,
                    checkpoint: Option<&std::path::Path>,
                    resume: Option<&std::path::Path>| {
        let mut builder = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .rate_pps(128)
            .rate_feedback(true)
            .queue_model(QueueModel {
                drain_rate: Some(16),
                high_watermark: 64,
                low_watermark: 8,
                ..QueueModel::unbounded()
            })
            .watch(watched.clone())
            .watch_churn(WatchChurn {
                refresh_every: 1,
                watch_capacity: 3,
                ..WatchChurn::default()
            })
            .checkpoint_every(2)
            .monitor_granularity(56)
            .start(start)
            .mode(CampaignMode::Monitor {
                windows: 4,
                shards: 2,
                producers: 2,
            });
        if let Some(stop) = stop {
            builder = builder.stop_signal(stop);
        }
        if let Some(path) = checkpoint {
            builder = builder.checkpoint_to(path);
        }
        if let Some(path) = resume {
            builder = builder.resume_from(path);
        }
        builder.run()
    };
    let path = std::env::temp_dir().join(format!("scent-determinism-{}.ckpt", std::process::id()));
    let full = campaign(None, None, None)?;
    let stop = StopSignal::new();
    stop.request_stop();
    let half = campaign(Some(stop), Some(&path), None)?;
    let resumed = campaign(None, None, Some(&path))?;
    std::fs::remove_file(&path).ok();
    let full = full.monitor().expect("monitor report");
    let mut resumed = resumed.monitor().expect("monitor report").clone();
    resumed.backpressure_stalls = full.backpressure_stalls;
    assert_eq!(
        &resumed, full,
        "resumed run must be byte-identical to the uninterrupted run"
    );
    let mut resumed = resumed.clone();
    resumed.backpressure_stalls = 0;
    println!(
        "== monitor checkpoint-resume: suspended after {} of {} windows, resumed ==",
        half.monitor().expect("monitor report").windows,
        resumed.windows
    );
    println!("{resumed:#?}");

    // Unseeded adaptive discovery on the churn world, across producer
    // counts: the monitor starts with an *empty* watch list and grows its
    // confidence-split prefix tree from the announcement topology alone.
    // The printed report includes the tree's final state (splits, merges,
    // dense certificates), the revision history its candidates drove, and
    // the validated-/48 set its Phase::Expansion probes populated — so any
    // scheduling dependence anywhere in the plan→sweep→fold→rebalance
    // boundary cycle shows up as a byte diff.
    for producers in [1usize, 4] {
        let report = Campaign::builder()
            .world(&engine)
            .seed(0x57ae)
            .watch_churn(WatchChurn {
                refresh_every: 1,
                watch_capacity: 3,
                ..WatchChurn::default()
            })
            .discovery(DiscoveryConfig {
                probe_budget: 262_144,
                ..DiscoveryConfig::paper_scale()
            })
            .monitor_granularity(56)
            .start(start)
            .mode(CampaignMode::Monitor {
                windows: 3,
                shards: 2,
                producers,
            })
            .run()?;
        let mut report = report.monitor().expect("monitor report").clone();
        report.backpressure_stalls = 0; // wall-clock diagnostic, not state
        println!("== monitor adaptive-discovery unseeded, producers={producers} ==");
        println!("{report:#?}");
    }

    // A 3-tenant scheduler run over one probe budget: distinct weights,
    // cadences and feedback configurations multiplexed by time-division.
    // Both the per-tenant reports and the full budget audit trail are
    // printed, so any scheduling dependence in the fair-share allocator,
    // the park/release machinery or the per-epoch session engine shows up
    // as a cross-run byte diff.
    let world = scenarios::continuous_world(13);
    let engine = Engine::build(world)?;
    let watched: Vec<followscent::ipv6::Ipv6Prefix> = engine
        .pools()
        .iter()
        .filter(|p| p.config.prefix.len() <= 48)
        .flat_map(|p| p.config.prefix.subnets(48).unwrap())
        .collect();
    let base = MonitorConfig {
        windows: 2,
        shards: 2,
        producers: 2,
        granularity: 56,
        start: SimTime::at(10, 9),
        checkpoint_every: Some(1),
        ..MonitorConfig::default()
    };
    let feedback = MonitorConfig {
        windows: 3,
        producers: 4,
        packets_per_second: 128,
        rate_feedback: true,
        queue_model: QueueModel {
            drain_rate: Some(16),
            high_watermark: 64,
            low_watermark: 8,
            ..QueueModel::unbounded()
        },
        ..base.clone()
    };
    let single_window = MonitorConfig {
        windows: 1,
        ..base.clone()
    };
    let scheduled = Scheduler::builder()
        .global_pps(6_000)
        .add(
            followscent::sched::Campaign::new(&engine, base, watched.clone()),
            3,
        )
        .add(
            followscent::sched::Campaign::new(&engine, feedback, watched.clone()),
            2,
        )
        .add(
            followscent::sched::Campaign::new(&engine, single_window, watched),
            1,
        )
        .run()
        .expect("valid scheduler configuration");
    println!("== scheduler 3-tenant, weights 3:2:1 over 6000 pps ==");
    println!("{:#?}", scheduled.allocations);
    for tenant in &scheduled.tenants {
        let mut report = tenant
            .outcome
            .as_ref()
            .expect("all tenants complete")
            .clone();
        report.backpressure_stalls = 0; // wall-clock diagnostic, not state
        println!(
            "== scheduler tenant {} (weight {}) ==",
            tenant.tenant, tenant.weight
        );
        println!("{report:#?}");
    }
    Ok(())
}
